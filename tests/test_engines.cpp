#include "noisypull/model/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "noisypull/analysis/stats.hpp"

namespace noisypull {
namespace {

// Minimal protocol for engine testing: fixed displays, records observations.
class StaticDisplayProtocol : public PullProtocol {
 public:
  StaticDisplayProtocol(std::vector<Symbol> displays, std::size_t alphabet)
      : displays_(std::move(displays)),
        alphabet_(alphabet),
        last_obs_(displays_.size(), SymbolCounts(alphabet)) {}

  std::size_t alphabet_size() const override { return alphabet_; }
  std::uint64_t num_agents() const override { return displays_.size(); }
  Symbol display(std::uint64_t agent, std::uint64_t) const override {
    return displays_[agent];
  }
  void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
              Rng&) override {
    last_obs_[agent] = obs;
  }
  Opinion opinion(std::uint64_t) const override { return 0; }

  const SymbolCounts& last_obs(std::uint64_t agent) const {
    return last_obs_[agent];
  }

  std::vector<Symbol> displays_;
  std::size_t alphabet_;
  std::vector<SymbolCounts> last_obs_;
};

std::vector<Symbol> half_and_half(std::uint64_t n) {
  std::vector<Symbol> d(n);
  for (std::uint64_t i = 0; i < n; ++i) d[i] = i < n / 2 ? 0 : 1;
  return d;
}

class EngineKind : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<Engine> make_engine() const {
    if (GetParam()) return std::make_unique<AggregateEngine>();
    return std::make_unique<ExactEngine>();
  }
};

TEST_P(EngineKind, ObservationTotalsEqualH) {
  StaticDisplayProtocol protocol(half_and_half(10), 2);
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  auto engine = make_engine();
  Rng rng(1);
  for (std::uint64_t h : {1ULL, 3ULL, 17ULL, 100ULL}) {
    engine->step(protocol, noise, Holdings{h}, 0, rng);
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(protocol.last_obs(i).total(), h);
    }
  }
}

TEST_P(EngineKind, ObservedDistributionMatchesTheory) {
  // 30% of agents display 1; uniform noise δ = 0.1.  One observation is 1
  // with probability 0.3·0.9 + 0.7·0.1 = 0.34.
  const std::uint64_t n = 10;
  std::vector<Symbol> displays(n, 0);
  displays[0] = displays[1] = displays[2] = 1;
  StaticDisplayProtocol protocol(std::move(displays), 2);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  auto engine = make_engine();
  Rng rng(7);

  std::array<std::uint64_t, 2> totals{};
  const int kRounds = 300;
  const std::uint64_t kH = 50;
  for (int t = 0; t < kRounds; ++t) {
    engine->step(protocol, noise, Holdings{kH}, t, rng);
    for (std::uint64_t i = 0; i < n; ++i) {
      totals[0] += protocol.last_obs(i)[0];
      totals[1] += protocol.last_obs(i)[1];
    }
  }
  const std::array<double, 2> probs = {0.66, 0.34};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
}

TEST_P(EngineKind, FourSymbolDistributionMatchesTheory) {
  // Alphabet of 4 (the SSF case): half the agents display symbol 0, half
  // symbol 3; δ-uniform noise with δ = 0.05.
  const std::uint64_t n = 8;
  std::vector<Symbol> displays(n, 0);
  for (std::uint64_t i = n / 2; i < n; ++i) displays[i] = 3;
  StaticDisplayProtocol protocol(std::move(displays), 4);
  const auto noise = NoiseMatrix::uniform(4, 0.05);
  auto engine = make_engine();
  Rng rng(11);

  std::array<std::uint64_t, 4> totals{};
  const int kRounds = 200;
  const std::uint64_t kH = 64;
  for (int t = 0; t < kRounds; ++t) {
    engine->step(protocol, noise, Holdings{kH}, t, rng);
    for (std::uint64_t i = 0; i < n; ++i) {
      for (int s = 0; s < 4; ++s) totals[s] += protocol.last_obs(i)[s];
    }
  }
  // q = ½·row(0) + ½·row(3) = {0.45, 0.05, 0.05, 0.45}.
  const std::array<double, 4> probs = {0.45, 0.05, 0.05, 0.45};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(3));
}

TEST_P(EngineKind, ArtificialNoiseComposesChannel) {
  // Artificial noise = full scramble (rows = {0.5, 0.5}) makes observations
  // uniform regardless of displays.
  StaticDisplayProtocol protocol(std::vector<Symbol>(10, 1), 2);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  auto engine = make_engine();
  engine->set_artificial_noise(Matrix{0.5, 0.5, 0.5, 0.5});
  Rng rng(13);

  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 300; ++t) {
    engine->step(protocol, noise, Holdings{20}, t, rng);
    for (std::uint64_t i = 0; i < 10; ++i) {
      totals[0] += protocol.last_obs(i)[0];
      totals[1] += protocol.last_obs(i)[1];
    }
  }
  const std::array<double, 2> probs = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));

  // Clearing the artificial noise restores the raw channel: all displays
  // are 1, so P(observe 1) = 0.9.
  engine->set_artificial_noise(std::nullopt);
  totals = {0, 0};
  for (int t = 0; t < 300; ++t) {
    engine->step(protocol, noise, Holdings{20}, t, rng);
    for (std::uint64_t i = 0; i < 10; ++i) {
      totals[0] += protocol.last_obs(i)[0];
      totals[1] += protocol.last_obs(i)[1];
    }
  }
  const std::array<double, 2> raw = {0.1, 0.9};
  EXPECT_LT(chi_square_statistic(totals, raw), chi_square_critical_999(1));
}

TEST_P(EngineKind, RejectsAlphabetMismatch) {
  StaticDisplayProtocol protocol(half_and_half(4), 2);
  const auto noise = NoiseMatrix::uniform(3, 0.1);
  auto engine = make_engine();
  Rng rng(1);
  EXPECT_THROW(engine->step(protocol, noise, Holdings{1}, 0, rng),
               std::invalid_argument);
}

TEST_P(EngineKind, RejectsZeroSampleSize) {
  StaticDisplayProtocol protocol(half_and_half(4), 2);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  auto engine = make_engine();
  Rng rng(1);
  EXPECT_THROW(engine->step(protocol, noise, Holdings{0}, 0, rng),
               std::invalid_argument);
}

TEST_P(EngineKind, DeterministicGivenSeed) {
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  auto run_once = [&](std::uint64_t seed) {
    StaticDisplayProtocol protocol(half_and_half(20), 2);
    auto engine = make_engine();
    Rng rng(seed);
    std::vector<std::uint64_t> trace;
    for (int t = 0; t < 10; ++t) {
      engine->step(protocol, noise, Holdings{9}, t, rng);
      for (std::uint64_t i = 0; i < 20; ++i) {
        trace.push_back(protocol.last_obs(i)[1]);
      }
    }
    return trace;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineKind, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Aggregate" : "Exact";
                         });

TEST(ExactEngine, DisplaysAreSnapshottedBeforeUpdates) {
  // A protocol that rewrites its display during update: if the engine did
  // not snapshot displays, later agents would observe the new value.
  class FlippingProtocol : public PullProtocol {
   public:
    std::size_t alphabet_size() const override { return 2; }
    std::uint64_t num_agents() const override { return 2; }
    Symbol display(std::uint64_t agent, std::uint64_t) const override {
      return value_[agent];
    }
    void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
                Rng&) override {
      last_obs_[agent] = obs;
      value_[agent] = 1;  // everyone switches to displaying 1
    }
    Opinion opinion(std::uint64_t) const override { return 0; }

    std::array<Symbol, 2> value_ = {0, 1};
    std::array<SymbolCounts, 2> last_obs_ = {SymbolCounts(2),
                                             SymbolCounts(2)};
  };

  FlippingProtocol protocol;
  ExactEngine engine;
  const auto noise = NoiseMatrix::noiseless(2);
  Rng rng(3);
  engine.step(protocol, noise, Holdings{256}, 0, rng);
  // Agent 1 updates after agent 0 flipped its value; with a snapshot it must
  // still have seen agent 0's original 0s (256 draws from {0,1} miss agent 0
  // with probability 2^-256).
  EXPECT_GT(protocol.last_obs_[1][0], 0u);
}

TEST(Engines, ExactAndAggregateAgreeInDistribution) {
  // The central cross-validation: per-round observation counts of one agent
  // must follow the same law under both engines.  We compare the count-of-1s
  // histograms with h = 8 over many rounds via chi-square on 9 cells.
  const std::uint64_t h = 8;
  std::vector<Symbol> displays = {0, 0, 0, 0, 1, 1};  // n = 6, c = (4, 2)
  const auto noise = NoiseMatrix::uniform(2, 0.25);
  // P(observe 1) = (2/6)·0.75 + (4/6)·0.25 = 5/12.
  const double p1 = 5.0 / 12.0;

  auto histogram = [&](Engine& engine, std::uint64_t seed) {
    StaticDisplayProtocol protocol(displays, 2);
    Rng rng(seed);
    std::array<std::uint64_t, 9> hist{};
    for (int t = 0; t < 30000; ++t) {
      engine.step(protocol, noise, Holdings{h}, t, rng);
      ++hist[protocol.last_obs(0)[1]];
    }
    return hist;
  };

  std::array<double, 9> pmf{};
  for (std::uint64_t k = 0; k <= 8; ++k) {
    double c = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(8 - j) / static_cast<double>(j + 1);
    }
    pmf[k] = c * std::pow(p1, static_cast<double>(k)) *
             std::pow(1 - p1, static_cast<double>(8 - k));
  }

  ExactEngine exact;
  AggregateEngine aggregate;
  const auto hist_exact = histogram(exact, 100);
  const auto hist_aggregate = histogram(aggregate, 200);
  EXPECT_LT(chi_square_statistic(hist_exact, pmf), chi_square_critical_999(8));
  EXPECT_LT(chi_square_statistic(hist_aggregate, pmf),
            chi_square_critical_999(8));
}

}  // namespace
}  // namespace noisypull
