// Engine-vs-oracle differential tests: every Monte-Carlo engine is held to
// theory/ExactChain's per-round display distributions with TV-distance and
// exact-mean assertions (tolerances from tv_tolerance; see oracle_util.hpp).
// These are the pinned, human-chosen configurations; test_oracle_fuzz.cpp
// sweeps randomized ones.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "oracle_util.hpp"

namespace noisypull {
namespace {

using oracle_test::compare_to_oracle;
using oracle_test::run_replicates;

constexpr std::uint64_t kReps = 20000;
constexpr std::uint64_t kSeed = 0x0acc1e5eed0001ULL;

TableAutomaton make_automaton() {
  return TableAutomaton(
      2, {TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                     .if_less = 1, .tie_a = 0, .tie_b = 2},
          TableState{.show = 1, .watch_a = 1, .watch_b = 0, .if_greater = 1,
                     .if_less = 2, .tie_a = 1, .tie_b = 1},
          TableState{.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 2,
                     .if_less = 0, .tie_a = 0, .tie_b = 1}});
}

TEST(OracleEngines, AggregateMatchesExactChain) {
  const auto automaton = make_automaton();
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  const Holdings h{2};
  const std::uint64_t rounds = 3;

  std::vector<ChainClass> classes(2);
  classes[0] = {.size = 5,
                .automaton = &automaton,
                .initial = 0,
                .channel = noise.matrix()};
  classes[1] = {.size = 3,
                .automaton = &automaton,
                .initial = 1,
                .channel = noise.matrix()};
  ExactChain chain(classes, {.h = h});

  const auto empirical = run_replicates(
      [&] {
        return std::make_unique<AutomatonProtocol>(std::vector<AutomatonGroup>{
            {.count = 5, .automaton = &automaton, .initial = 0},
            {.count = 3, .automaton = &automaton, .initial = 1}});
      },
      [] { return std::make_unique<AggregateEngine>(); }, noise, h, rounds,
      kReps, kSeed);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleEngines, SequentialAscendingMatchesExactChain) {
  const auto automaton = make_automaton();
  Rng mat_rng(42);
  const auto noise = NoiseMatrix::random_upper_bounded(2, 0.3, mat_rng);
  const Holdings h{1};
  const std::uint64_t rounds = 3;

  std::vector<ChainClass> classes(2);
  classes[0] = {.size = 4,
                .automaton = &automaton,
                .initial = 0,
                .channel = noise.matrix()};
  classes[1] = {.size = 2,
                .automaton = &automaton,
                .initial = 2,
                .channel = noise.matrix()};
  ExactChain chain(
      classes,
      {.h = h, .kernel = ExactChainOptions::Kernel::SequentialAscending});

  const auto empirical = run_replicates(
      [&] {
        return std::make_unique<AutomatonProtocol>(std::vector<AutomatonGroup>{
            {.count = 4, .automaton = &automaton, .initial = 0},
            {.count = 2, .automaton = &automaton, .initial = 2}});
      },
      [] {
        return std::make_unique<SequentialEngine>(
            SequentialEngine::Order::FixedAscending);
      },
      noise, h, rounds, kReps, kSeed + 1);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleEngines, HeterogeneousMatchesExactChain) {
  const auto automaton = make_automaton();
  const auto clean = NoiseMatrix::uniform(2, 0.05);
  Rng mat_rng(43);
  const auto dirty = NoiseMatrix::random_upper_bounded(2, 0.35, mat_rng);
  const Holdings h{2};
  const std::uint64_t rounds = 3;

  std::vector<ChainClass> classes(2);
  classes[0] = {.size = 4,
                .automaton = &automaton,
                .initial = 0,
                .channel = clean.matrix()};
  classes[1] = {.size = 3,
                .automaton = &automaton,
                .initial = 1,
                .channel = dirty.matrix()};
  ExactChain chain(classes, {.h = h});

  std::vector<NoiseMatrix> per_agent;
  for (int i = 0; i < 4; ++i) per_agent.push_back(clean);
  for (int i = 0; i < 3; ++i) per_agent.push_back(dirty);

  const auto empirical = run_replicates(
      [&] {
        return std::make_unique<AutomatonProtocol>(std::vector<AutomatonGroup>{
            {.count = 4, .automaton = &automaton, .initial = 0},
            {.count = 3, .automaton = &automaton, .initial = 1}});
      },
      [&] { return std::make_unique<HeterogeneousEngine>(per_agent); },
      // The noise argument is only alphabet-validated by the heterogeneous
      // engine; the per-agent matrices above are what corrupt observations.
      clean, h, rounds, kReps, kSeed + 2);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleEngines, FaultyEngineMatchesExactChain) {
  // Deterministic-schedule faults all at once: FlipFlop Byzantine displays
  // on the 2 highest-indexed agents, a synchronized blackout stalling the 2
  // lowest-indexed agents for rounds 1-2, and seed-scheduled noise bursts.
  const auto automaton = make_automaton();
  const auto noise = NoiseMatrix::uniform(2, 0.15);
  const Holdings h{2};
  const std::uint64_t rounds = 4;
  const std::uint64_t n = 8;

  FaultPlan plan;
  plan.seed = 99;
  plan.byzantine.fraction = 0.25;  // ⌊0.25·8⌋ = 2 agents: indices 6, 7
  plan.byzantine.strategy = ByzantineStrategy::FlipFlop;
  plan.byzantine.wrong_symbol = 1;
  plan.byzantine.honest_symbol = 0;
  plan.stall.blackout_fraction = 0.25;  // agents 0, 1
  plan.stall.blackout_start = 1;
  plan.stall.blackout_rounds = 2;
  plan.burst.rate = 0.45;
  plan.burst.rounds = 1;
  plan.burst.delta = 0.4;
  ASSERT_EQ(oracle_test::byzantine_count(plan, n), 2u);
  ASSERT_EQ(oracle_test::blackout_count(plan, n), 2u);

  std::vector<ChainClass> classes(3);
  classes[0] = {.size = 2,
                .automaton = &automaton,
                .initial = 0,
                .channel = noise.matrix(),
                .forged = DisplayOverride::none(),
                .stall = StallWindow{.start = 1, .rounds = 2}};
  classes[1] = {.size = 4,
                .automaton = &automaton,
                .initial = 0,
                .channel = noise.matrix()};
  classes[2] = {.size = 2,
                .automaton = &automaton,
                .initial = 1,
                .channel = noise.matrix(),
                .forged = oracle_test::byzantine_override(plan)};
  ExactChain chain(classes,
                   {.h = h,
                    .channel_override =
                        oracle_test::burst_overrides(plan, 2, rounds)});

  const auto empirical = run_replicates(
      [&] {
        return std::make_unique<AutomatonProtocol>(std::vector<AutomatonGroup>{
            {.count = 2, .automaton = &automaton, .initial = 0},
            {.count = 4, .automaton = &automaton, .initial = 0},
            {.count = 2, .automaton = &automaton, .initial = 1}});
      },
      [&] { return std::make_unique<oracle_test::OwnedFaultyAggregate>(plan); },
      noise, h, rounds, kReps, kSeed + 3, oracle_test::faulted_view(plan, n));
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleEngines, SourceFilterMatchesExactChain) {
  // The real core/SourceFilter under AggregateEngine vs the SfAutomaton
  // mirror — a full tiny schedule including the terminated tail round.
  const PopulationConfig pop{.n = 5, .s1 = 1, .s0 = 1};
  const SfSchedule sched{.h = 2,
                         .m = 2,
                         .phase_rounds = 1,
                         .w = 2,
                         .subphase_rounds = 1,
                         .num_subphases = 1,
                         .final_rounds = 1};
  const auto noise = NoiseMatrix::uniform(2, 0.15);
  const Holdings h{2};
  const std::uint64_t rounds = sched.total_rounds() + 1;  // 5: past the end

  SfAutomaton source1(sched, true, 1);
  SfAutomaton source0(sched, true, 0);
  SfAutomaton plain(sched, false, 0);
  std::vector<ChainClass> classes(3);
  classes[0] = {.size = 1,
                .automaton = &source1,
                .initial = 0,
                .channel = noise.matrix()};
  classes[1] = {.size = 1,
                .automaton = &source0,
                .initial = 0,
                .channel = noise.matrix()};
  classes[2] = {.size = 3,
                .automaton = &plain,
                .initial = 0,
                .channel = noise.matrix()};
  // SF's interned counter states make the joint support large; pruning at
  // 1e-8 bounds it, and compare_to_oracle widens every tolerance by the
  // truncated mass.
  ExactChain chain(classes, {.h = h, .prune_epsilon = 1e-8});

  const auto empirical = run_replicates(
      [&] { return std::make_unique<SourceFilter>(pop, sched); },
      [] { return std::make_unique<AggregateEngine>(); }, noise, h, rounds,
      kReps, kSeed + 4);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleEngines, SsfMatchesExactChain) {
  // The real core/SelfStabilizingSourceFilter vs the SsfAutomaton mirror on
  // the tagged 4-symbol alphabet, h = 1 so flushes land every other round.
  const PopulationConfig pop{.n = 5, .s1 = 1, .s0 = 0};
  const MemoryBudget m{2};
  const auto noise = NoiseMatrix::uniform(4, 0.1);
  const Holdings h{1};
  const std::uint64_t rounds = 4;

  SsfAutomaton source(m, true, 1);
  SsfAutomaton plain(m, false, 0);
  std::vector<ChainClass> classes(2);
  classes[0] = {.size = 1,
                .automaton = &source,
                .initial = 0,
                .channel = noise.matrix()};
  classes[1] = {.size = 4,
                .automaton = &plain,
                .initial = 0,
                .channel = noise.matrix()};
  ExactChain chain(classes, {.h = h});

  const auto empirical = run_replicates(
      [&] {
        return std::make_unique<SelfStabilizingSourceFilter>(
            SelfStabilizingSourceFilter::with_memory_budget(pop, h, m));
      },
      [] { return std::make_unique<AggregateEngine>(); }, noise, h, rounds,
      kReps, kSeed + 5);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

}  // namespace
}  // namespace noisypull
