#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/push/push_engine.hpp"
#include "noisypull/push/push_spread.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

// Test protocol: a fixed subset of agents push a fixed symbol; deliveries
// are recorded.
class StaticPushProtocol : public PushProtocol {
 public:
  StaticPushProtocol(std::uint64_t n, std::vector<std::uint64_t> senders,
                     std::vector<Symbol> messages, std::size_t alphabet = 2)
      : n_(n),
        senders_(std::move(senders)),
        messages_(std::move(messages)),
        alphabet_(alphabet),
        inbox_(n, SymbolCounts(alphabet)) {}

  std::size_t alphabet_size() const override { return alphabet_; }
  std::uint64_t num_agents() const override { return n_; }
  bool sends(std::uint64_t agent, std::uint64_t) const override {
    for (auto s : senders_) {
      if (s == agent) return true;
    }
    return false;
  }
  Symbol message(std::uint64_t agent, std::uint64_t) const override {
    for (std::size_t i = 0; i < senders_.size(); ++i) {
      if (senders_[i] == agent) return messages_[i];
    }
    return 0;
  }
  void deliver(std::uint64_t agent, std::uint64_t, const SymbolCounts& rcv,
               Rng&) override {
    inbox_[agent] = rcv;
  }
  Opinion opinion(std::uint64_t) const override { return 0; }

  std::uint64_t n_;
  std::vector<std::uint64_t> senders_;
  std::vector<Symbol> messages_;
  std::size_t alphabet_;
  std::vector<SymbolCounts> inbox_;
};

class PushEngineKind : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<PushEngine> make_engine() const {
    if (GetParam()) return std::make_unique<AggregatePushEngine>();
    return std::make_unique<ExactPushEngine>();
  }
};

TEST_P(PushEngineKind, TotalDeliveredEqualsSendersTimesH) {
  StaticPushProtocol protocol(20, {0, 3, 7}, {1, 0, 1});
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  auto engine = make_engine();
  Rng rng(1);
  for (std::uint64_t h : {1ULL, 4ULL, 32ULL}) {
    engine->step(protocol, noise, Holdings{h}, 0, rng);
    std::uint64_t total = 0;
    for (const auto& inbox : protocol.inbox_) total += inbox.total();
    EXPECT_EQ(total, 3 * h);
  }
}

TEST_P(PushEngineKind, SilentRoundDeliversNothing) {
  StaticPushProtocol protocol(10, {}, {});
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  auto engine = make_engine();
  Rng rng(2);
  engine->step(protocol, noise, Holdings{5}, 0, rng);
  for (const auto& inbox : protocol.inbox_) EXPECT_EQ(inbox.total(), 0u);
}

TEST_P(PushEngineKind, SymbolDistributionMatchesChannel) {
  // One sender pushes symbol 1 through δ = 0.2 noise: received symbols are
  // 1 with probability 0.8.
  StaticPushProtocol protocol(5, {0}, {1});
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  auto engine = make_engine();
  Rng rng(3);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 4000; ++t) {
    engine->step(protocol, noise, Holdings{8}, t, rng);
    for (const auto& inbox : protocol.inbox_) {
      totals[0] += inbox[0];
      totals[1] += inbox[1];
    }
  }
  const std::array<double, 2> probs = {0.2, 0.8};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
}

TEST_P(PushEngineKind, ReceiversAreUniform) {
  StaticPushProtocol protocol(8, {0}, {1});
  const auto noise = NoiseMatrix::noiseless(2);
  auto engine = make_engine();
  Rng rng(4);
  std::array<std::uint64_t, 8> per_receiver{};
  for (int t = 0; t < 8000; ++t) {
    engine->step(protocol, noise, Holdings{4}, t, rng);
    for (std::uint64_t i = 0; i < 8; ++i) {
      per_receiver[i] += protocol.inbox_[i].total();
    }
  }
  const std::array<double, 8> uniform = {0.125, 0.125, 0.125, 0.125,
                                         0.125, 0.125, 0.125, 0.125};
  EXPECT_LT(chi_square_statistic(per_receiver, uniform),
            chi_square_critical_999(7));
}

TEST_P(PushEngineKind, RejectsBadParameters) {
  StaticPushProtocol protocol(5, {0}, {1});
  auto engine = make_engine();
  Rng rng(5);
  EXPECT_THROW(engine->step(protocol, NoiseMatrix::uniform(3, 0.1),
                            Holdings{1}, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(engine->step(protocol, NoiseMatrix::uniform(2, 0.1),
                            Holdings{0}, 0, rng),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PushEngineKind, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Aggregate" : "Exact";
                         });

TEST(PushEngines, PerReceiverCountDistributionsAgree) {
  // With 3 senders × h = 4, a fixed receiver's delivery count follows
  // Binomial(12, 1/6) under both engines.
  const std::uint64_t kH = 4;
  const auto noise = NoiseMatrix::noiseless(2);
  auto histogram = [&](PushEngine& engine, std::uint64_t seed) {
    StaticPushProtocol protocol(6, {0, 1, 2}, {1, 1, 1});
    Rng rng(seed);
    std::array<std::uint64_t, 13> hist{};
    for (int t = 0; t < 20000; ++t) {
      engine.step(protocol, noise, Holdings{kH}, t, rng);
      ++hist[protocol.inbox_[5].total()];
    }
    return hist;
  };
  std::array<double, 13> pmf{};
  for (std::uint64_t k = 0; k <= 12; ++k) {
    double c = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(12 - j) / static_cast<double>(j + 1);
    }
    pmf[k] = c * std::pow(1.0 / 6, static_cast<double>(k)) *
             std::pow(5.0 / 6, static_cast<double>(12 - k));
  }
  ExactPushEngine exact;
  AggregatePushEngine aggregate;
  EXPECT_LT(chi_square_statistic(histogram(exact, 10), pmf),
            chi_square_critical_999(12));
  EXPECT_LT(chi_square_statistic(histogram(aggregate, 20), pmf),
            chi_square_critical_999(12));
}

TEST(PushSpread, ConstructionAndParameters) {
  const auto p = pop(1000, 1, 0);
  PushSpread ps(p, Holdings{1}, Delta{0.1});
  EXPECT_GE(ps.refresh_window(), 3u);
  EXPECT_EQ(ps.refresh_window() % 2, 1u);  // odd majority window
  EXPECT_GT(ps.growth_rounds(), 0u);
  EXPECT_GT(ps.cleanup_rounds(), 0u);
  EXPECT_EQ(ps.planned_rounds(), ps.growth_rounds() + ps.cleanup_rounds());
  EXPECT_THROW(PushSpread(p, Holdings{0}, Delta{0.1}), std::invalid_argument);
  EXPECT_THROW(PushSpread(p, Holdings{1}, Delta{0.5}), std::invalid_argument);
  EXPECT_THROW(PushSpread(p, Holdings{1}, Delta{0.1}, 0.0),
               std::invalid_argument);
}

TEST(PushSpread, OnlySourcesSendInitially) {
  const auto p = pop(50, 2, 0);
  PushSpread ps(p, Holdings{1}, Delta{0.1});
  EXPECT_EQ(ps.active_count(), 2u);
  EXPECT_TRUE(ps.sends(0, 0));
  EXPECT_TRUE(ps.sends(1, 0));
  EXPECT_FALSE(ps.sends(10, 0));
  EXPECT_EQ(ps.message(0, 0), 1);
}

TEST(PushSpread, FirstContactActivates) {
  const auto p = pop(50, 1, 0);
  PushSpread ps(p, Holdings{1}, Delta{0.1});
  Rng rng(6);
  SymbolCounts one(2);
  one[1] = 1;
  ps.deliver(10, 0, one, rng);
  EXPECT_TRUE(ps.sends(10, 1));
  EXPECT_EQ(ps.message(10, 1), 1);  // copied the delivered bit
  // Empty deliveries never activate.
  SymbolCounts empty(2);
  ps.deliver(11, 0, empty, rng);
  EXPECT_FALSE(ps.sends(11, 1));
}

TEST(PushSpread, RefreshReestimatesByMajority) {
  const auto p = pop(50, 1, 0);
  PushSpread ps(p, Holdings{1}, Delta{0.0});
  Rng rng(7);
  SymbolCounts one(2);
  one[1] = 1;
  ps.deliver(10, 0, one, rng);
  ASSERT_EQ(ps.message(10, 1), 1);
  // Feed k_ zeros: the running tally majority flips the estimate.
  SymbolCounts zeros(2);
  zeros[0] = ps.refresh_window();
  ps.deliver(10, 1, zeros, rng);
  EXPECT_EQ(ps.message(10, 2), 0);
}

TEST(PushSpread, SpreadsWithSingleSourceLowNoise) {
  const auto p = pop(1500, 1, 0);
  const double delta = 0.1;
  const auto noise = NoiseMatrix::uniform(2, delta);
  int ok = 0;
  for (int rep = 0; rep < 4; ++rep) {
    PushSpread ps(p, Holdings{1}, Delta{delta});
    AggregatePushEngine engine;
    Rng rng(100 + rep);
    ok += run_push(ps, engine, noise, p.correct_opinion(),
                   RunConfig{.h = 1}, rng)
              .all_correct_at_end
              ? 1
              : 0;
  }
  EXPECT_GE(ok, 3);
}

TEST(PushSpread, SpreadsZeroAsWellAsOne) {
  const auto p = pop(1500, 0, 1);  // single 0-source
  const double delta = 0.1;
  PushSpread ps(p, Holdings{1}, Delta{delta});
  AggregatePushEngine engine;
  Rng rng(8);
  const auto result = run_push(ps, engine, NoiseMatrix::uniform(2, delta),
                               p.correct_opinion(), RunConfig{.h = 1}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(PushSpread, LargerFanoutShortensSchedule) {
  const auto p = pop(4000, 1, 0);
  PushSpread h1(p, Holdings{1}, Delta{0.1});
  PushSpread h16(p, Holdings{16}, Delta{0.1});
  EXPECT_LT(h16.planned_rounds(), h1.planned_rounds());
}

TEST(PushSpread, ExactEngineAgreesOnOutcome) {
  const auto p = pop(600, 1, 0);
  const double delta = 0.05;
  PushSpread ps(p, Holdings{1}, Delta{delta});
  ExactPushEngine engine;
  Rng rng(9);
  const auto result = run_push(ps, engine, NoiseMatrix::uniform(2, delta),
                               p.correct_opinion(), RunConfig{.h = 1}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

}  // namespace
}  // namespace noisypull
