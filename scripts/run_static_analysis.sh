#!/usr/bin/env bash
# One-shot static-analysis gate for the noisypull tree.
#
# Configures a build with compile_commands.json and the strict warning set,
# then runs, in order:
#   1. the full NOISYPULL_WERROR build (-Werror -Wshadow -Wconversion
#      -Wdouble-promotion promoted to errors),
#   2. the repo-specific invariant linter (noisypull_lint: fixtures
#      self-test, then the real tree),
#   3. clang-tidy with the curated .clang-tidy config (if installed),
#   4. cppcheck (if installed).
#
# Exits nonzero on the first layer with findings.  Tools that are not
# installed are reported and skipped — the builtin layers (1-2) always run,
# so the gate never silently passes on a machine without LLVM.
#
# Usage: scripts/run_static_analysis.sh [build-dir]   (default: build-sa)
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sa}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

note "configure ($BUILD, NOISYPULL_WERROR=ON, compile_commands.json)"
cmake -B "$BUILD" -S "$ROOT" -DNOISYPULL_WERROR=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2

note "build with -Werror -Wshadow -Wconversion -Wdouble-promotion"
if ! cmake --build "$BUILD" -j "$JOBS"; then
  echo "run_static_analysis: strict build FAILED"
  exit 1
fi

note "noisypull_lint self-test (every rule must fire on its fixture)"
if ! "$BUILD/tools/noisypull_lint" --self-test "$ROOT/tests/lint_fixtures"; then
  FAILED=1
fi

note "noisypull_lint over the real tree"
if ! "$BUILD/tools/noisypull_lint" \
    "$ROOT/src" "$ROOT/bench" "$ROOT/tools" "$ROOT/tests" "$ROOT/examples"; then
  FAILED=1
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (curated .clang-tidy, warnings-as-errors)"
  if ! run-clang-tidy -p "$BUILD" -quiet \
      "$ROOT/src/.*\.cpp" "$ROOT/tools/.*\.cpp"; then
    FAILED=1
  fi
elif command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (curated .clang-tidy, warnings-as-errors)"
  while IFS= read -r tu; do
    clang-tidy -p "$BUILD" -quiet "$tu" || FAILED=1
  done < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)
else
  note "clang-tidy not installed — skipped (CI runs it; see ci.yml)"
fi

if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck"
  if ! cppcheck --project="$BUILD/compile_commands.json" \
      --enable=warning,performance,portability --inline-suppr \
      --suppress='*:*/_deps/*' --error-exitcode=1 --quiet; then
    FAILED=1
  fi
else
  note "cppcheck not installed — skipped"
fi

if [ "$FAILED" -ne 0 ]; then
  echo
  echo "run_static_analysis: FAILED (findings above)"
  exit 1
fi
echo
echo "run_static_analysis: all layers clean"
