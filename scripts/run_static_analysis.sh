#!/usr/bin/env bash
# One-shot static-analysis gate for the noisypull tree — the single local
# entry point CI mirrors.
#
# Configures a build with compile_commands.json and the strict warning set,
# then runs, in order:
#   1. the full NOISYPULL_WERROR build (-Werror -Wshadow -Wconversion
#      -Wdouble-promotion promoted to errors),
#   2. the repo-specific invariant linter (noisypull_lint: fixtures
#      self-test, then the real tree — or only changed files with
#      --changed-only),
#   3. clang-format on the files --changed-only selected (if installed),
#   4. clang-tidy with the curated .clang-tidy config (if installed),
#   5. cppcheck (if installed).
#
# Exits nonzero on the first layer with findings.  Tools that are not
# installed are reported and skipped — the builtin layers (1-2) always run,
# so the gate never silently passes on a machine without LLVM.
#
# Usage: scripts/run_static_analysis.sh [options] [build-dir]
#   --changed-only       lint/format only files changed vs the merge base
#                        (origin/main, falling back to HEAD~1); note the
#                        include-graph cycle check needs the full tree, so
#                        CI still runs the unrestricted pass
#   --sarif <file>       also write the tree lint findings as SARIF 2.1.0
#                        (for CI upload as inline PR annotations)
#   [build-dir]          defaults to build-sa
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD=""
CHANGED_ONLY=0
SARIF_OUT=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --changed-only) CHANGED_ONLY=1 ;;
    --sarif)
      shift
      SARIF_OUT="${1:?--sarif needs a file argument}"
      ;;
    *) BUILD="$1" ;;
  esac
  shift
done
BUILD="${BUILD:-$ROOT/build-sa}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

# Files changed relative to the merge base, restricted to lintable C++.
changed_files() {
  local base
  base="$(git -C "$ROOT" merge-base origin/main HEAD 2>/dev/null)" ||
    base="$(git -C "$ROOT" rev-parse HEAD~1 2>/dev/null)" || return 0
  git -C "$ROOT" diff --name-only --diff-filter=ACMR "$base" -- \
    '*.cpp' '*.hpp' | while IFS= read -r f; do
    case "$f" in
      */lint_fixtures/*) ;;  # fixtures are linted by the self-test
      *) [ -f "$ROOT/$f" ] && printf '%s\n' "$ROOT/$f" ;;
    esac
  done
}

note "configure ($BUILD, NOISYPULL_WERROR=ON, compile_commands.json)"
cmake -B "$BUILD" -S "$ROOT" -DNOISYPULL_WERROR=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2

note "build with -Werror -Wshadow -Wconversion -Wdouble-promotion"
if ! cmake --build "$BUILD" -j "$JOBS"; then
  echo "run_static_analysis: strict build FAILED"
  exit 1
fi

note "noisypull_lint self-test (every rule must fire on its fixture)"
if ! "$BUILD/tools/noisypull_lint" --self-test "$ROOT/tests/lint_fixtures"; then
  FAILED=1
fi

LINT_PATHS=("$ROOT/src" "$ROOT/bench" "$ROOT/tools" "$ROOT/tests"
            "$ROOT/examples")
if [ "$CHANGED_ONLY" -eq 1 ]; then
  mapfile -t LINT_PATHS < <(changed_files)
  note "noisypull_lint over ${#LINT_PATHS[@]} changed file(s)"
else
  note "noisypull_lint over the real tree"
fi
if [ "${#LINT_PATHS[@]}" -gt 0 ]; then
  if ! "$BUILD/tools/noisypull_lint" "${LINT_PATHS[@]}"; then
    FAILED=1
  fi
  if [ -n "$SARIF_OUT" ]; then
    "$BUILD/tools/noisypull_lint" --format=sarif "${LINT_PATHS[@]}" \
      > "$SARIF_OUT" || true  # findings already failed the text pass
    echo "SARIF written to $SARIF_OUT"
  fi
fi

if [ "$CHANGED_ONLY" -eq 1 ] && [ "${#LINT_PATHS[@]}" -gt 0 ] &&
   command -v clang-format >/dev/null 2>&1; then
  note "clang-format on changed files"
  if ! clang-format --dry-run --Werror "${LINT_PATHS[@]}"; then
    FAILED=1
  fi
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (curated .clang-tidy, warnings-as-errors)"
  if ! run-clang-tidy -p "$BUILD" -quiet \
      "$ROOT/src/.*\.cpp" "$ROOT/tools/.*\.cpp"; then
    FAILED=1
  fi
elif command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (curated .clang-tidy, warnings-as-errors)"
  while IFS= read -r tu; do
    clang-tidy -p "$BUILD" -quiet "$tu" || FAILED=1
  done < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)
else
  note "clang-tidy not installed — skipped (CI runs it; see ci.yml)"
fi

if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck"
  if ! cppcheck --project="$BUILD/compile_commands.json" \
      --enable=warning,performance,portability --inline-suppr \
      --suppress='*:*/_deps/*' --error-exitcode=1 --quiet; then
    FAILED=1
  fi
else
  note "cppcheck not installed — skipped"
fi

if [ "$FAILED" -ne 0 ]; then
  echo
  echo "run_static_analysis: FAILED (findings above)"
  exit 1
fi
echo
echo "run_static_analysis: all layers clean"
