#!/usr/bin/env python3
"""Render the paper-style figures from the bench harness' CSV exports.

Usage:
    # 1. export the data
    mkdir -p results
    ./build/bench/fig1_noise_reduction --csv results/fig1
    ./build/bench/tab_thm4_scaling_n   --csv results/thm4n
    ./build/bench/tab_thm4_scaling_h   --csv results/thm4h
    ./build/bench/tab_churn            --csv results/churn
    # 2. plot (requires matplotlib)
    python3 scripts/plot_results.py results/

Produces PNGs next to the CSVs: fig1.png (the paper's Figure 1), plus
scaling and churn plots.  Every plot is optional — the script renders
whatever CSVs it finds and skips the rest.
"""
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    return header, data


def numeric(value):
    try:
        return float(value)
    except ValueError:
        return None


def plot_fig1(plt, directory):
    path = directory / "fig1_curve.csv"
    if not path.exists():
        return
    _, data = read_csv(path)
    delta = [float(r[0]) for r in data]
    f2 = [numeric(r[1]) for r in data]
    f4 = [numeric(r[2]) for r in data]
    fig, ax = plt.subplots(figsize=(5, 4))
    ax.plot(delta, f2, label="d = 2")
    pts4 = [(d, v) for d, v in zip(delta, f4) if v is not None]
    ax.plot([p[0] for p in pts4], [p[1] for p in pts4], label="d = 4")
    ax.plot([0, 0.5], [0, 0.5], ":", color="gray", label="f(δ) = δ")
    ax.set_xlabel("δ")
    ax.set_ylabel("f(δ)")
    ax.set_title("Figure 1: uniform-noise level f(δ) (Definition 7)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(directory / "fig1.png", dpi=150)
    print(f"wrote {directory / 'fig1.png'}")


def plot_scaling_n(plt, directory):
    path = directory / "thm4n.csv"
    if not path.exists():
        return
    _, data = read_csv(path)
    series = {}
    for row in data:
        n, h = float(row[0]), float(row[1])
        kind = "h = n" if n == h else ("h = 1" if h == 1 else "h = sqrt(n)")
        series.setdefault(kind, []).append((n, float(row[3])))
    fig, ax = plt.subplots(figsize=(5, 4))
    for kind, pts in sorted(series.items()):
        pts.sort()
        ax.loglog([p[0] for p in pts], [p[1] for p in pts], "o-", label=kind)
    ax.set_xlabel("n")
    ax.set_ylabel("rounds T")
    ax.set_title("Theorem 4: convergence time vs n")
    ax.legend()
    fig.tight_layout()
    fig.savefig(directory / "thm4_scaling_n.png", dpi=150)
    print(f"wrote {directory / 'thm4_scaling_n.png'}")


def plot_scaling_h(plt, directory):
    path = directory / "thm4h.csv"
    if not path.exists():
        return
    _, data = read_csv(path)
    h = [float(r[0]) for r in data]
    t = [float(r[2]) for r in data]
    fig, ax = plt.subplots(figsize=(5, 4))
    ax.loglog(h, t, "o-")
    ax.loglog(h, [t[0] * h[0] / x for x in h], ":", color="gray",
              label="T ∝ 1/h")
    ax.set_xlabel("sample size h")
    ax.set_ylabel("rounds T")
    ax.set_title("Theorem 4: linear speedup in h")
    ax.legend()
    fig.tight_layout()
    fig.savefig(directory / "thm4_scaling_h.png", dpi=150)
    print(f"wrote {directory / 'thm4_scaling_h.png'}")


def plot_churn(plt, directory):
    path = directory / "churn.csv"
    if not path.exists():
        return
    _, data = read_csv(path)
    rate = [float(r[0]) for r in data]
    frac = [float(r[2]) for r in data]
    fig, ax = plt.subplots(figsize=(5, 4))
    ax.plot(rate, frac, "o-")
    ax.set_xscale("symlog", linthresh=1e-3)
    ax.set_xlabel("per-round churn rate")
    ax.set_ylabel("steady-state correct fraction")
    ax.set_title("SSF under continuous churn")
    fig.tight_layout()
    fig.savefig(directory / "churn.png", dpi=150)
    print(f"wrote {directory / 'churn.png'}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1
    directory = pathlib.Path(sys.argv[1])
    if not directory.is_dir():
        print(f"not a directory: {directory}")
        return 2
    plot_fig1(plt, directory)
    plot_scaling_n(plt, directory)
    plot_scaling_h(plt, directory)
    plot_churn(plt, directory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
