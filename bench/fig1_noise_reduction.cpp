// FIG1 — reproduces Figure 1 of the paper: the uniform-noise level
// f(δ) (Definition 7) as a function of δ for alphabet sizes d = 2 and d = 4.
//
// The paper plots the two curves on δ ∈ [0, 1/d); we print the same series
// numerically and additionally *verify Theorem 8 empirically*: for random
// δ-upper-bounded noise matrices N, the artificial-noise matrix P = N⁻¹·T is
// stochastic and N·P deviates from the f(δ)-uniform matrix by < 1e-9.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  // Seed for the Theorem 8 spot-check below (year of the source paper).
  constexpr std::uint64_t kVerifySeed = 2025;
  const auto args = BenchArgs::parse(argc, argv);

  header("FIG1 / fig1_noise_reduction",
         "Figure 1: f(delta) for d = 2 and d = 4; plus an empirical check of "
         "Theorem 8 on random delta-upper-bounded matrices.");

  // --- the Figure 1 series -------------------------------------------------
  Table curve({"delta", "f(delta) d=2", "f(delta) d=4"});
  for (double delta : linear_grid(0.0, 0.48, 25)) {
    const double f2 =
        delta < 0.5 ? uniform_noise_level(2, delta) : 0.5;
    curve.cell(delta, 4).cell(f2, 4);
    if (delta < 0.25) {
      curve.cell(uniform_noise_level(4, delta), 4);
    } else {
      curve.cell("-");  // outside the domain [0, 1/4)
    }
    curve.end_row();
  }
  args.emit(curve, "_curve");

  // --- Theorem 8 verification ---------------------------------------------
  Rng rng(kVerifySeed);
  Table verify({"d", "delta", "instances", "max |NP - T| entry",
                "P stochastic"});
  for (std::size_t d : {2u, 3u, 4u, 5u, 8u}) {
    for (double frac : {0.25, 0.5, 0.9}) {
      const double delta = frac / static_cast<double>(d);
      double worst = 0.0;
      bool all_stochastic = true;
      const int kInstances = 200;
      for (int i = 0; i < kInstances; ++i) {
        const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
        const auto red = reduce_to_uniform(n, delta);
        all_stochastic = all_stochastic && red.artificial.is_stochastic(1e-9);
        const auto target =
            NoiseMatrix::uniform(d, red.delta_prime).matrix();
        worst =
            std::max(worst, red.effective.matrix().max_abs_diff(target));
      }
      verify.cell(static_cast<std::uint64_t>(d))
          .cell(delta, 4)
          .cell(static_cast<std::uint64_t>(kInstances))
          .cell(worst, 12)
          .cell(all_stochastic ? "yes" : "NO")
          .end_row();
    }
  }
  args.emit(verify, "_theorem8");
  return 0;
}
