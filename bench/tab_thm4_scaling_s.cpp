// THM4-S — bias dependence of Theorem 4, including the remark that SF works
// all the way down to s = 1 (unlike the Ω(√n log n)-bias requirements common
// in population-protocol majority results).  Eq. 19's budget shrinks like
// 1/s² until the √n·log n/s term takes over.
//
// Both sweeps run through one experiment-scheduler queue
// (analysis/scheduler.hpp) with the shared `--threads` / `--ci-halfwidth` /
// `--cache-dir` flags.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-S / tab_thm4_scaling_s",
         "Theorem 4: convergence holds even at bias s = 1; the time budget "
         "shrinks ~1/s^2 and then ~1/s as s grows.");

  const std::uint64_t n = 4096;
  const std::uint64_t h = 64;  // small enough that the noise term dominates
  const double delta = 0.25;
  const auto noise = NoiseMatrix::uniform(2, delta);

  const std::vector<std::uint64_t> clean_s = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::uint64_t> conflict_s0 = {0, 10, 18, 19};

  std::vector<ExperimentCell> cells;
  for (std::uint64_t s : clean_s) {
    const PopulationConfig pop{.n = n, .s1 = s, .s0 = 0};
    cells.push_back(ExperimentCell{
        .label = "s=" + std::to_string(s),
        .make_protocol = sf_factory(pop, Holdings{h}, Delta{delta}),
        .noise = noise,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = h},
        .seed = 6000 + s,
        .protocol_digest = sf_digest(pop, Holdings{h}, Delta{delta})});
  }
  for (std::uint64_t s0 : conflict_s0) {
    const PopulationConfig pop{.n = n, .s1 = 40 - s0, .s0 = s0};
    cells.push_back(ExperimentCell{
        .label = "s0=" + std::to_string(s0),
        .make_protocol = sf_factory(pop, Holdings{h}, Delta{delta}),
        .noise = noise,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = h},
        .seed = 6100 + s0,
        .protocol_digest = sf_digest(pop, Holdings{h}, Delta{delta})});
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 8));

  Table table({"s1", "s0", "bias s", "success", "rounds T", "T*s^2",
               "T*s"});
  for (std::size_t i = 0; i < clean_s.size(); ++i) {
    const std::uint64_t s = clean_s[i];
    const double t = stats[i].mean_rounds_run;
    table.cell(s)
        .cell(std::uint64_t{0})
        .cell(s)
        .cell(stats[i].success_rate, 2)
        .cell(t, 0)
        .cell(t * static_cast<double>(s * s), 0)
        .cell(t * static_cast<double>(s), 0)
        .end_row();
  }
  args.emit(table, "_clean");

  // The same sweep with conflicting sources at fixed total s0+s1 = 40:
  // only the *bias* matters for correctness; more conflict = slower.
  Table conflict({"s1", "s0", "bias s", "success", "rounds T"});
  for (std::size_t i = 0; i < conflict_s0.size(); ++i) {
    const std::uint64_t s0 = conflict_s0[i];
    const PopulationConfig pop{.n = n, .s1 = 40 - s0, .s0 = s0};
    const auto& st = stats[clean_s.size() + i];
    conflict.cell(pop.s1)
        .cell(s0)
        .cell(pop.bias())
        .cell(st.success_rate, 2)
        .cell(st.mean_rounds_run, 0)
        .end_row();
  }
  args.emit(conflict, "_conflict");
  std::printf(
      "expected shape: success ~1 for every s >= 1 (even s = 1); T*s^2\n"
      "roughly flat for small s, transitioning toward T*s flat when the\n"
      "sqrt(n)/s term dominates.\n");
  return 0;
}
