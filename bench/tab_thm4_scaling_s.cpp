// THM4-S — bias dependence of Theorem 4, including the remark that SF works
// all the way down to s = 1 (unlike the Ω(√n log n)-bias requirements common
// in population-protocol majority results).  Eq. 19's budget shrinks like
// 1/s² until the √n·log n/s term takes over.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-S / tab_thm4_scaling_s",
         "Theorem 4: convergence holds even at bias s = 1; the time budget "
         "shrinks ~1/s^2 and then ~1/s as s grows.");

  const std::uint64_t n = 4096;
  const std::uint64_t h = 64;  // small enough that the noise term dominates
  const double delta = 0.25;
  const auto noise = NoiseMatrix::uniform(2, delta);

  Table table({"s1", "s0", "bias s", "success", "rounds T", "T*s^2",
               "T*s"});
  for (std::uint64_t s : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
    const PopulationConfig pop{.n = n, .s1 = s, .s0 = 0};
    const auto results = run_repetitions(
        sf_factory(pop, h, delta), noise, pop.correct_opinion(),
        RunConfig{.h = h},
        RepeatOptions{.repetitions = 8, .seed = 6000 + s});
    const double t = static_cast<double>(results.front().rounds_run);
    table.cell(s)
        .cell(std::uint64_t{0})
        .cell(s)
        .cell(success_rate(results), 2)
        .cell(t, 0)
        .cell(t * static_cast<double>(s * s), 0)
        .cell(t * static_cast<double>(s), 0)
        .end_row();
  }
  args.emit(table, "_clean");

  // The same sweep with conflicting sources at fixed total s0+s1 = 40:
  // only the *bias* matters for correctness; more conflict = slower.
  Table conflict({"s1", "s0", "bias s", "success", "rounds T"});
  for (std::uint64_t s0 : {0ULL, 10ULL, 18ULL, 19ULL}) {
    const std::uint64_t s1 = 40 - s0;
    const PopulationConfig pop{.n = n, .s1 = s1, .s0 = s0};
    const auto results = run_repetitions(
        sf_factory(pop, h, delta), noise, pop.correct_opinion(),
        RunConfig{.h = h},
        RepeatOptions{.repetitions = 8, .seed = 6100 + s0});
    conflict.cell(s1)
        .cell(s0)
        .cell(pop.bias())
        .cell(success_rate(results), 2)
        .cell(static_cast<double>(results.front().rounds_run), 0)
        .end_row();
  }
  args.emit(conflict, "_conflict");
  std::printf(
      "expected shape: success ~1 for every s >= 1 (even s = 1); T*s^2\n"
      "roughly flat for small s, transitioning toward T*s flat when the\n"
      "sqrt(n)/s term dominates.\n");
  return 0;
}
