// HET — heterogeneous noise (extension experiment): the paper assumes one
// common noise matrix N; deployed populations have per-agent channels.  A
// mixture where every channel is δ_max-upper-bounded is, from each
// receiver's perspective, a valid noisy PULL(h) instance at level δ_max, so
// SF tuned to δ_max must converge — paying the worst agent's price.
//
// We sweep the fraction of "bad" agents (δ = 0.4) among "good" ones
// (δ = 0.05) and report success when SF is tuned to the worst level, and —
// as a cautionary ablation — when it is optimistically tuned to the good
// level.  h is kept small so the sample budget m is the binding resource.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

std::vector<NoiseMatrix> mixture(std::uint64_t n, double bad_fraction,
                                 double good, double bad, Rng& rng) {
  std::vector<NoiseMatrix> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(
        NoiseMatrix::uniform(2, rng.bernoulli(bad_fraction) ? bad : good));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("HET / tab_heterogeneous",
         "Per-agent noise mixtures (good delta = 0.05, bad delta = 0.35, "
         "h = 64): SF tuned to the worst level vs optimistically tuned.");

  const std::uint64_t n = 2000;
  const std::uint64_t h = 64;  // small enough that the budget m matters
  const double good = 0.05, bad = 0.35;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const std::uint64_t reps = 8;

  Table table({"bad fraction", "tuned to", "success", "rounds T"});
  for (double bad_fraction : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (const bool pessimistic : {true, false}) {
      const double tuned = pessimistic ? bad : good;
      std::uint64_t ok = 0;
      double t = 0.0;
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        Rng mix_rng(20000 + rep);
        HeterogeneousEngine engine(
            mixture(n, bad_fraction, good, bad, mix_rng));
        SourceFilter sf(pop, Holdings{h}, Delta{tuned}, kC1);
        Rng rng(21000 + rep);
        const auto r = run(sf, engine, NoiseMatrix::uniform(2, tuned),
                           pop.correct_opinion(), RunConfig{.h = h}, rng);
        ok += r.all_correct_at_end ? 1 : 0;
        t = static_cast<double>(r.rounds_run);
      }
      table.cell(bad_fraction, 2)
          .cell(pessimistic ? "delta_max=0.35" : "delta_good=0.05")
          .cell(static_cast<double>(ok) / static_cast<double>(reps), 2)
          .cell(t, 0)
          .end_row();
    }
  }
  args.emit(table);
  std::printf(
      "expected shape: tuning to delta_max succeeds at every mixture (at\n"
      "the cost of the longer worst-case schedule); the optimistic tuning\n"
      "holds while bad agents are rare and fails as they dominate — the\n"
      "budget m must track the real worst-case channel.\n");
  return 0;
}
