// DYN — time-resolved dynamics of one SF run and one SSF recovery, the
// "what does a run look like" series underlying every other table: per
// checkpoint, the number of correct opinions, correct weak opinions, and
// the display histogram.  This is the companion to the quickstart example,
// at experiment scale and with the internals exposed.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

std::uint64_t correct_weak(const SourceFilter& sf, Opinion correct) {
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < sf.num_agents(); ++i) {
    count += sf.weak_opinion(i) == correct ? 1 : 0;
  }
  return count;
}

std::uint64_t displays_of(const PullProtocol& p, std::uint64_t round,
                          Symbol s) {
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < p.num_agents(); ++i) {
    count += p.display(i, round) == s ? 1 : 0;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  // Named trace seeds; the SSF trace splits init/run onto substreams.
  constexpr std::uint64_t kSfTraceSeed = 2025;
  constexpr std::uint64_t kSsfTraceSeed = 2025;
  constexpr std::uint64_t kInitStream = 0;
  constexpr std::uint64_t kRunStream = 1;
  const auto args = BenchArgs::parse(argc, argv);

  header("DYN / tab_dynamics",
         "Time-resolved internals of one SF run (n = 10000, delta = 0.2, "
         "s = 1, h = n) and one SSF recovery from wrong consensus.");

  // --- SF -------------------------------------------------------------
  {
    const std::uint64_t n = 10000;
    const double delta = 0.2;
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    const auto noise = NoiseMatrix::uniform(2, delta);
    SourceFilter sf(pop, Holdings{n}, Delta{delta}, kC1);
    AggregateEngine engine;
    Rng rng(kSfTraceSeed);

    const auto& sched = sf.schedule();
    Table table({"round", "phase", "displays of 1", "correct opinions",
                 "correct weak opinions"});
    for (std::uint64_t t = 0; t < sched.total_rounds(); ++t) {
      const bool checkpoint =
          t == 0 || t == sched.phase_rounds - 1 ||
          t == sched.phase_rounds || t + 1 == sched.boosting_start() ||
          (t >= sched.boosting_start() &&
           (t - sched.boosting_start()) % 10 == 0) ||
          t + 1 == sched.total_rounds();
      std::uint64_t ones = 0;
      if (checkpoint) ones = displays_of(sf, t, 1);
      engine.step(sf, noise, Holdings{n}, t, rng);
      if (!checkpoint) continue;
      const char* phase = t < sched.phase_rounds ? "listen-0"
                          : t < sched.boosting_start() ? "listen-1"
                                                       : "boost";
      table.cell(t)
          .cell(phase)
          .cell(ones)
          .cell(count_correct(sf, pop.correct_opinion()))
          .cell(correct_weak(sf, pop.correct_opinion()))
          .end_row();
    }
    args.emit(table, "_sf");
    std::printf(
        "reading guide: displays-of-1 is ~s1 in Phase 0 and ~n in Phase 1\n"
        "(the neutral cover); weak opinions form at the listening/boosting\n"
        "boundary with a slight majority, and boosting drives opinions to\n"
        "n within a few sub-phases.\n\n");
  }

  // --- SSF --------------------------------------------------------------
  {
    const std::uint64_t n = 10000;
    const double delta = 0.05;
    const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
    const auto noise = NoiseMatrix::uniform(4, delta);
    SelfStabilizingSourceFilter ssf(pop, Holdings{n}, Delta{delta}, kC1);
    Rng init(kSsfTraceSeed, kInitStream);
    corrupt_population(ssf, CorruptionPolicy::WrongConsensus,
                       pop.correct_opinion(), init);
    AggregateEngine engine;
    Rng rng(kSsfTraceSeed, kRunStream);

    Table table({"round", "correct opinions", "displays (0,wrong)",
                 "displays (0,correct)"});
    const Symbol wrong_sym = SelfStabilizingSourceFilter::encode(
        false, pop.correct_opinion() ^ 1);
    const Symbol correct_sym =
        SelfStabilizingSourceFilter::encode(false, pop.correct_opinion());
    for (std::uint64_t t = 0; t < ssf.convergence_deadline(); ++t) {
      const std::uint64_t wrong_d = displays_of(ssf, t, wrong_sym);
      const std::uint64_t correct_d = displays_of(ssf, t, correct_sym);
      engine.step(ssf, noise, Holdings{n}, t, rng);
      table.cell(t)
          .cell(count_correct(ssf, pop.correct_opinion()))
          .cell(wrong_d)
          .cell(correct_d)
          .end_row();
    }
    args.emit(table, "_ssf");
    std::printf(
        "reading guide: the run starts with every display backing the wrong\n"
        "opinion (the adversary's consensus); within two update cycles the\n"
        "source-tagged messages flip the weak opinions, and opinions follow\n"
        "on the next cycle — the Theorem 5 recovery in motion.\n");
  }
  return 0;
}
