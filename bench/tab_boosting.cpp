// LEM33 — the majority-boosting trajectory.  Lemma 33 proves that, per
// sub-phase, the advantage A_ℓ = #correct − n/2 multiplies by ≥ 1.2 until it
// saturates at n/√(8πe); Lemma 34 concludes A_L ≥ n/√(8πe) and Lemma 35
// finishes the job in the long final sub-phase.
//
// To make the geometric growth visible we pick h = w, so each sub-phase
// aggregates exactly w = 100e/(1−2δ)² messages (at h = n a single sub-phase
// already jumps to consensus — majority over n samples is too strong to show
// the per-step factor).  We record the per-round correct count of one run,
// slice it at sub-phase boundaries, and print A_ℓ with its growth factor
// until saturation, plus the saturation ceiling the lemma names.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  constexpr std::uint64_t kTraceSeed = 31337;
  const auto args = BenchArgs::parse(argc, argv);

  header("LEM33 / tab_boosting",
         "Lemma 33: A_(l+1) >= min(1.2*A_l, n/sqrt(8*pi*e)) — the boosting "
         "phase amplifies the weak-opinion advantage geometrically.");

  const std::uint64_t n = 20000;
  const double delta = 0.2;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(2, delta);

  // One sub-phase = exactly w messages: set h = w.
  const auto probe = make_sf_schedule(pop, Holdings{1}, Delta{delta}, kC1);
  const std::uint64_t h = probe.w;

  SourceFilter sf(pop, Holdings{h}, Delta{delta}, kC1);
  AggregateEngine engine;
  Rng rng(kTraceSeed);
  const auto result = run(sf, engine, noise, pop.correct_opinion(),
                          RunConfig{.h = h, .record_trajectory = true}, rng);

  const auto& sched = sf.schedule();
  const double ceiling =
      static_cast<double>(n) / std::sqrt(8 * M_PI * std::exp(1.0));

  Table table({"sub-phase", "round", "correct", "A_l = correct - n/2",
               "A_l / A_(l-1)"});
  double prev_a = 0.0;
  std::uint64_t sub = 0;
  int saturated_rows = 0;
  for (std::uint64_t t = sched.boosting_start() - 1;
       t + 1 < result.trajectory.size(); ++t) {
    const bool boundary =
        (t == sched.boosting_start() - 1) || sf.is_subphase_end(t);
    if (!boundary) continue;
    const double correct = static_cast<double>(result.trajectory[t]);
    const double a = correct - static_cast<double>(n) / 2;
    ++sub;
    if (saturated_rows >= 3) {
      prev_a = a;
      continue;  // trajectory is pinned at n; skip to the final row
    }
    if (result.trajectory[t] == n) ++saturated_rows;
    std::string factor = "-";
    if (sub > 1 && prev_a > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", a / prev_a);
      factor = buf;
    }
    table.cell(sub == 1 ? std::string("listening end")
                        : std::to_string(sub - 1))
        .cell(t)
        .cell(result.trajectory[t])
        .cell(a, 1)
        .cell(factor)
        .end_row();
    prev_a = a;
  }
  // Final row: the long last sub-phase's outcome.
  const std::uint64_t last = result.trajectory.size() - 1;
  table.cell("final")
      .cell(last)
      .cell(result.trajectory[last])
      .cell(static_cast<double>(result.trajectory[last]) -
                static_cast<double>(n) / 2,
            1)
      .cell("-")
      .end_row();
  args.emit(table);
  std::printf(
      "saturation ceiling n/sqrt(8*pi*e) = %.1f; converged: %s\n"
      "expected shape: growth factor >= 1.2 while A_l is below the ceiling\n"
      "(the lemma is a worst-case guarantee — measured factors are much\n"
      "larger, so boosting saturates within a few sub-phases), then\n"
      "saturation near n/2 and full consensus at the end.\n",
      ceiling, result.all_correct_at_end ? "yes" : "no");
  return 0;
}
