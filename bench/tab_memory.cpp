// MEM — the O(log T + log h) memory claim of Theorems 4 and 5: per-agent
// state is a constant number of counters bounded by the message budgets, so
// its footprint in bits grows logarithmically in n (through T) and h.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("MEM / tab_memory",
         "Theorems 4/5 memory claim: per-agent state is O(log T + log h) "
         "bits.");

  const double delta = 0.2;
  const double dssf = 0.05;

  Table table({"n", "h", "SF rounds T", "SF state bits", "SSF budget m",
               "SSF state bits", "log2(T) + log2(h)"});
  for (std::uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    for (std::uint64_t h : {std::uint64_t{1}, n}) {
      const auto sched = make_sf_schedule(pop, Holdings{h}, Delta{delta}, kC1);
      const auto m_ssf = ssf_memory_budget(pop, Delta{dssf}, kC1);
      const double logs =
          std::log2(static_cast<double>(sched.total_rounds())) +
          std::log2(static_cast<double>(h));
      table.cell(n)
          .cell(h)
          .cell(sched.total_rounds())
          .cell(sf_state_bits(sched))
          .cell(m_ssf)
          .cell(ssf_state_bits(MemoryBudget{m_ssf}, Holdings{h}))
          .cell(logs, 1)
          .end_row();
    }
  }
  args.emit(table);
  std::printf(
      "expected shape: state bits grow by a constant per doubling of T or\n"
      "h (a few dozen bits even at n = 10^6), tracking log2(T) + log2(h)\n"
      "up to the constant number of counters.\n");
  return 0;
}
