// THM4-N — Theorem 4's convergence-time scaling in n, and the headline
// remark: with h = n the noisy information spreading problem is solved in
// O(log n) rounds (vs Ω(n/h·...) in general).
//
// For each n we run SF with h ∈ {1 (small n only), √n, n} at constant noise
// δ and a single source, and report the measured total running time T
// (which for SF is the deterministic schedule length) together with the
// first round at which the whole population is correct, plus the
// normalizations the theorem predicts to be ~flat:
//   h = n   → T / ln n           (logarithmic time),
//   h = √n  → T·h / (n·ln n)     (linear speedup in h).
//
// All cells of the grid go through one experiment-scheduler queue
// (analysis/scheduler.hpp): `--threads` drains cells concurrently,
// `--ci-halfwidth`/`--max-reps` opt into adaptive early stopping, and
// `--cache-dir` reuses previously computed repetitions.
//
// `--huge` appends lumped-engine rows (sim/lumped_engine, DESIGN.md §12) at
// n = 10⁹ and 10¹² with s1 = ⌈√n⌉ — populations no agent-array engine can
// represent.  They ride the same scheduler/cache machinery via
// ExperimentCell::make_lumped; the rows use fewer repetitions (the runs are
// single-trajectory but thousands of rounds long) and their h is a constant
// holding size, so only the T/ln n column is meaningful for them.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);
  // BenchArgs::parse ignores flags it does not know; scan for --huge here.
  bool huge = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--huge") huge = true;
  }

  header("THM4-N / tab_thm4_scaling_n",
         "Theorem 4: T = O((1/h)(n delta/(s^2(1-2delta)^2)+...)log n + log n);"
         " at h = n the time is O(log n).");

  const double delta = 0.2;
  const std::uint64_t reps = 8;

  struct Row {
    std::uint64_t n;
    std::uint64_t h;
  };
  std::vector<Row> grid;
  std::vector<ExperimentCell> cells;
  for (std::uint64_t n : {250ULL, 500ULL, 1000ULL, 2000ULL, 4000ULL,
                          8000ULL, 16000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    std::vector<std::uint64_t> hs = {
        static_cast<std::uint64_t>(std::llround(std::sqrt(n))), n};
    if (n <= 500) hs.insert(hs.begin(), 1);  // h = 1 is Θ(n log n) rounds
    for (std::uint64_t h : hs) {
      grid.push_back({n, h});
      cells.push_back(ExperimentCell{
          .label = "n=" + std::to_string(n) + " h=" + std::to_string(h),
          .make_protocol = sf_factory(pop, Holdings{h}, Delta{delta}),
          .noise = NoiseMatrix::uniform(2, delta),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = h},
          .seed = 1000 + n + h,
          .protocol_digest = sf_digest(pop, Holdings{h}, Delta{delta})});
    }
  }
  const auto stats = run_experiment(cells, scheduler_options(args, reps));

  Table table({"n", "h", "success", "rounds T", "first-correct",
               "T*h/(n ln n)", "T/ln n"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [n, h] = grid[i];
    const double logn = std::log(static_cast<double>(n));
    const double t = stats[i].mean_rounds_run;
    table.cell(n)
        .cell(h)
        .cell(stats[i].success_rate, 2)
        .cell(t, 0)
        .cell(stats[i].mean_convergence_round, 1)
        .cell(t * static_cast<double>(h) / (static_cast<double>(n) * logn), 3)
        .cell(t / logn, 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: success ~1 everywhere; T*h/(n ln n) roughly flat for\n"
      "h <= sqrt(n); T/ln n roughly flat (and small) for h = n.\n");

  if (huge) {
    const std::uint64_t huge_reps = 3;
    const std::uint64_t h = 64;
    std::vector<std::uint64_t> huge_ns = {1'000'000'000ULL,
                                          1'000'000'000'000ULL};
    std::vector<ExperimentCell> huge_cells;
    for (std::uint64_t n : huge_ns) {
      const auto s1 = static_cast<std::uint64_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      const PopulationConfig pop{.n = n, .s1 = s1, .s0 = 0};
      ExperimentCell cell;
      cell.label = "lumped n=" + std::to_string(n);
      cell.noise = NoiseMatrix::uniform(2, delta);
      cell.correct = pop.correct_opinion();
      cell.cfg = RunConfig{.h = h};  // max_rounds 0 → planned schedule
      cell.seed = 2000 + n % 9973 + h;
      cell.protocol_digest = CellKey()
                                 .str("LumpedSourceFilter")
                                 .u64(pop.n)
                                 .u64(pop.s1)
                                 .u64(pop.s0)
                                 .u64(h)
                                 .f64(delta)
                                 .f64(kC1.get())
                                 .digest();
      cell.make_lumped = [pop, h, delta]() {
        const auto sched =
            make_sf_schedule(pop, Holdings{h}, Delta{delta}, kC1);
        return make_lumped_sf(pop, sched, NoiseMatrix::uniform(2, delta));
      };
      huge_cells.push_back(std::move(cell));
    }
    const auto huge_stats =
        run_experiment(huge_cells, scheduler_options(args, huge_reps));
    warn_if_degraded(huge_stats);

    Table huge_table({"n", "s1", "h", "success", "rounds T", "first-correct",
                      "T/ln n"});
    for (std::size_t i = 0; i < huge_cells.size(); ++i) {
      const std::uint64_t n = huge_ns[i];
      const double logn = std::log(static_cast<double>(n));
      const double t = huge_stats[i].mean_rounds_run;
      huge_table.cell(n)
          .cell(static_cast<std::uint64_t>(
              std::ceil(std::sqrt(static_cast<double>(n)))))
          .cell(h)
          .cell(huge_stats[i].success_rate, 2)
          .cell(t, 0)
          .cell(huge_stats[i].mean_convergence_round, 1)
          .cell(t / logn, 2)
          .end_row();
    }
    args.emit(huge_table, "_huge");
    std::printf(
        "lumped rows: one-histogram-per-round engine; s1 = ceil(sqrt(n))\n"
        "keeps the schedule length ~h log n, so T/ln n stays ~flat while n\n"
        "spans three orders of magnitude past any agent-array engine.\n");
  }
  return 0;
}
