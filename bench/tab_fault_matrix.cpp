// FAULT — runtime fault-injection matrix (an extension experiment: every
// other adversary in this repo strikes before the run; here the corruption
// is ongoing).  For each fault class of FaultPlan — Byzantine displays,
// message omissions, crash/sleep stalls, noise bursts — the steady-state
// fraction of correct agents is swept against the fault rate for SSF, SF,
// and the voter/majority baselines, and the collapse threshold (first swept
// rate with correct fraction < 0.9) is located per protocol.  The paper's
// robustness claim predicts SSF degrades last: its rate-free, memory-count
// design has no schedule to desynchronize and no single sample to lose.
//
// A supplementary table sweeps the mimic-source Byzantine strategy against
// SSF: forging the source *tag* collapses SSF at fractions comparable to
// the true source bias s/n — the empirical face of the model's assumption
// that sourcehood is an input the adversary cannot fake.
//
// Every cell — the full matrix and the mimic supplement — rides one
// experiment-scheduler queue (analysis/scheduler.hpp, steady-state mode),
// so the bench honors the shared --threads / --ci-halfwidth / --cache-dir /
// --resume / --rep-timeout / --sweep-report flags like the theorem tables.
#include <cmath>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace noisypull;
using namespace noisypull::bench;

enum class FaultType { Byzantine, Drop, Stall, Burst };

constexpr FaultType kAllTypes[] = {FaultType::Byzantine, FaultType::Drop,
                                   FaultType::Stall, FaultType::Burst};

const char* name(FaultType type) {
  switch (type) {
    case FaultType::Byzantine:
      return "byzantine";
    case FaultType::Drop:
      return "drop";
    case FaultType::Stall:
      return "stall";
    case FaultType::Burst:
      return "burst";
  }
  return "?";
}

constexpr double kDelta = 0.05;
constexpr double kCollapseBar = 0.9;

// Sweep scale; `--smoke` (the CI sanitizer job) shrinks it to one cheap
// nonzero-rate row per fault class so ASan/UBSan exercise every fault code
// path without paying for the full matrix.
struct SweepConfig {
  std::uint64_t n = 1000;
  std::uint64_t reps = 5;
  std::uint64_t measure = 40;
  bool smoke = false;
};
SweepConfig cfg;

std::vector<double> rates(FaultType type) {
  std::vector<double> swept;
  switch (type) {
    case FaultType::Byzantine:  // fraction of Byzantine agents
      swept = {0.0, 0.1, 0.2, 0.3, 0.4, 0.48};
      break;
    case FaultType::Drop:  // per-observation loss probability
      swept = {0.0, 0.3, 0.6, 0.9, 0.99, 1.0};
      break;
    case FaultType::Stall:  // per-round crash probability (stall 2-10 rounds)
      swept = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
      break;
    case FaultType::Burst:  // per-round burst-start probability (2 rounds)
      swept = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
      break;
  }
  if (cfg.smoke) swept.resize(2);  // zero + the first nonzero rate
  return swept;
}

FaultPlan make_plan(FaultType type, double rate, bool tagged_alphabet,
                    Opinion correct, std::uint64_t sources,
                    std::uint64_t seed) {
  FaultPlan plan =
      tagged_alphabet ? FaultPlan::for_ssf(correct) : FaultPlan::for_binary(correct);
  plan.seed = seed;
  plan.first_eligible = sources;
  switch (type) {
    case FaultType::Byzantine:
      plan.byzantine.fraction = rate;
      plan.byzantine.strategy = ByzantineStrategy::AlwaysWrong;
      break;
    case FaultType::Drop:
      plan.drop.p = rate;
      break;
    case FaultType::Stall:
      plan.stall.crash_rate = rate;
      plan.stall.min_rounds = 2;
      plan.stall.max_rounds = 10;
      break;
    case FaultType::Burst:
      plan.burst.rate = rate;
      plan.burst.rounds = 2;
      // Spike severity matched across alphabets by the payload-bit flip
      // probability: uniform(4, 0.2) flips the second bit w.p. 0.4, as does
      // uniform(2, 0.4) — both far above the tuned bound δ = 0.05.
      plan.burst.delta = tagged_alphabet ? 0.2 : 0.4;
      break;
  }
  return plan;
}

ProtocolFactory voter_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<VoterProtocol>(pop, init);
  };
}

ProtocolFactory majority_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<MajorityDynamics>(pop, init);
  };
}

std::uint64_t voter_digest(const PopulationConfig& pop) {
  return CellKey()
      .str("VoterProtocol")
      .u64(pop.n)
      .u64(pop.s1)
      .u64(pop.s0)
      .digest();
}

std::uint64_t majority_digest(const PopulationConfig& pop) {
  return CellKey()
      .str("MajorityDynamics")
      .u64(pop.n)
      .u64(pop.s1)
      .u64(pop.s0)
      .digest();
}

// One matrix cell: protocol `proto` under fault class `type` at `rate`.
// The per-protocol warmup logic reproduces the pre-scheduler bench: the
// measured window must be genuinely steady state for each protocol's own
// timescale, and SF — whose fixed schedule freezes — is measured right
// after its planned horizon.
ExperimentCell make_cell(const std::string& proto, FaultType type, double rate,
                         std::uint64_t type_idx, std::uint64_t rate_idx,
                         std::size_t proto_idx) {
  const PopulationConfig pop{.n = cfg.n, .s1 = 2, .s0 = 0};
  const Opinion correct = pop.correct_opinion();
  const bool tagged = proto == "ssf";
  const std::uint64_t cell_id = (type_idx * 10 + rate_idx) * 8 + proto_idx;
  const FaultPlan plan =
      make_plan(type, rate, tagged, correct, pop.num_sources(), 7700 + cell_id);
  const auto noise = NoiseMatrix::uniform(tagged ? 4 : 2, kDelta);

  std::uint64_t warmup = 60;  // voter/majority mixing time at this scale
  std::uint64_t measure = cfg.measure;
  ProtocolFactory factory;
  std::uint64_t digest = 0;
  if (proto == "ssf") {
    const SelfStabilizingSourceFilter ref(pop, Holdings{cfg.n}, Delta{kDelta},
                                          kC1);
    warmup = 2 * ref.convergence_deadline();
    // Omissions stretch the memory-fill time by 1/(1-p); stalls park agents
    // for stretches of the warmup.  Scale the warmup so the measured window
    // is genuinely steady state (capped to keep the sweep fast).
    if (type == FaultType::Drop && rate < 1.0) {
      warmup = std::min<std::uint64_t>(
          2000, static_cast<std::uint64_t>(
                    std::ceil(static_cast<double>(warmup) / (1.0 - rate))));
    }
    if (type == FaultType::Stall) warmup *= 3;
    factory = ssf_factory(pop, Holdings{cfg.n}, Delta{kDelta},
                          CorruptionPolicy::None);
    digest = ssf_digest(pop, Holdings{cfg.n}, Delta{kDelta},
                        CorruptionPolicy::None);
  } else if (proto == "sf") {
    // SF has a fixed horizon; it freezes afterwards, so the "steady state"
    // is its final answer under the faults that hit its schedule.
    const SourceFilter ref(pop, Holdings{cfg.n}, Delta{kDelta}, kC1);
    warmup = ref.planned_rounds();
    measure = 5;
    factory = sf_factory(pop, Holdings{cfg.n}, Delta{kDelta});
    digest = sf_digest(pop, Holdings{cfg.n}, Delta{kDelta});
  } else if (proto == "voter") {
    factory = voter_factory(pop);
    digest = voter_digest(pop);
  } else {
    factory = majority_factory(pop);
    digest = majority_digest(pop);
  }

  ExperimentCell cell{
      .label = std::string(name(type)) + " r=" + std::to_string(rate) + " " +
               proto,
      .make_protocol = std::move(factory),
      .noise = noise,
      .correct = correct,
      .cfg = RunConfig{.h = cfg.n},
      .seed = 4000 + cell_id,
      .protocol_digest = digest};
  cell.fault_plan = plan;
  cell.steady_state = SteadyStateSpec{.warmup = warmup, .measure = measure};
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      cfg = SweepConfig{.n = 200, .reps = 1, .measure = 10, .smoke = true};
    }
  }
  const std::vector<std::string> protos = {"ssf", "sf", "voter", "majority"};

  header("FAULT / tab_fault_matrix",
         "Runtime fault matrix: steady-state correct fraction vs fault rate "
         "for each fault class, and the per-protocol collapse threshold "
         "(first rate below 0.9).");
  std::printf("n = %llu, h = n, delta = %.2f, s = 2, %llu reps per cell; "
              "byzantine strategy always-wrong;\nstall duration U[2,10]; "
              "burst = 2 rounds at delta 0.2 (4-symbol) / 0.4 (binary)\n\n",
              static_cast<unsigned long long>(cfg.n), kDelta,
              static_cast<unsigned long long>(cfg.reps));

  // Build every cell — the full matrix, then the mimic supplement — and run
  // them through ONE scheduler queue: a hard cell (drop 0.99 needs a 2000-
  // round warmup) no longer serializes the rows behind it.
  std::vector<ExperimentCell> cells;
  std::uint64_t type_idx = 0;
  for (const FaultType type : kAllTypes) {
    std::uint64_t rate_idx = 0;
    for (const double rate : rates(type)) {
      for (std::size_t p = 0; p < protos.size(); ++p) {
        cells.push_back(make_cell(protos[p], type, rate, type_idx, rate_idx,
                                  p));
      }
      ++rate_idx;
    }
    ++type_idx;
  }
  const std::size_t mimic_base = cells.size();
  std::vector<double> fractions = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05};
  if (cfg.smoke) fractions = {0.0, 0.05};
  {
    const PopulationConfig pop{.n = cfg.n, .s1 = 2, .s0 = 0};
    const SelfStabilizingSourceFilter ref(pop, Holdings{cfg.n}, Delta{kDelta},
                                          kC1);
    std::uint64_t idx = 0;
    for (const double f : fractions) {
      FaultPlan plan = FaultPlan::for_ssf(pop.correct_opinion());
      plan.seed = 880 + idx;
      plan.first_eligible = pop.num_sources();
      plan.byzantine.fraction = f;
      plan.byzantine.strategy = ByzantineStrategy::MimicSource;
      ExperimentCell cell{
          .label = "mimic f=" + std::to_string(f),
          .make_protocol = ssf_factory(pop, Holdings{cfg.n}, Delta{kDelta},
                                       CorruptionPolicy::None),
          .noise = NoiseMatrix::uniform(4, kDelta),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = cfg.n},
          .seed = 4300 + idx,
          .protocol_digest =
              ssf_digest(pop, Holdings{cfg.n}, Delta{kDelta},
                         CorruptionPolicy::None)};
      cell.fault_plan = plan;
      cell.steady_state =
          SteadyStateSpec{.warmup = 2 * ref.convergence_deadline(),
                          .measure = cfg.measure};
      cells.push_back(std::move(cell));
      ++idx;
    }
  }
  const auto stats = run_experiment(cells, scheduler_options(args, cfg.reps));
  warn_if_degraded(stats);

  Table table({"fault", "rate", "ssf", "sf", "voter", "majority"});
  // collapse[type][proto]: first swept rate with fraction < 0.9 (or -1).
  double collapse[4][4];
  for (auto& row : collapse)
    for (auto& v : row) v = -1.0;

  std::size_t cell_index = 0;
  type_idx = 0;
  for (const FaultType type : kAllTypes) {
    for (const double rate : rates(type)) {
      table.cell(name(type)).cell(rate, 2);
      for (std::size_t p = 0; p < protos.size(); ++p) {
        const double f = stats[cell_index++].mean_steady_fraction;
        table.cell(f, 3);
        if (f < kCollapseBar && collapse[type_idx][p] < 0.0) {
          collapse[type_idx][p] = rate;
        }
      }
      table.end_row();
    }
    ++type_idx;
  }
  args.emit(table);

  std::printf("\ncollapse thresholds (first swept rate with correct fraction "
              "< %.1f; '-' = none up to the sweep maximum):\n\n",
              kCollapseBar);
  Table summary({"fault", "ssf", "sf", "voter", "majority"});
  type_idx = 0;
  for (const FaultType type : kAllTypes) {
    summary.cell(name(type));
    for (std::size_t p = 0; p < protos.size(); ++p) {
      if (collapse[type_idx][p] < 0.0) {
        summary.cell("-");
      } else {
        summary.cell(collapse[type_idx][p], 2);
      }
    }
    summary.end_row();
    ++type_idx;
  }
  summary.print(std::cout);

  std::printf(
      "\nexpected shape: SSF holds 1.0 deep into every sweep (no schedule to "
      "desynchronize,\nno single sample to lose) and collapses last; SF's "
      "fixed schedule breaks earlier;\nvoter hovers near 0.5 even fault-free; "
      "majority locks onto a coin-flip consensus.\n\n");

  // Supplementary: the identity attack SSF cannot survive — mimic-source
  // Byzantine agents forge the source tag, and the filter amplifies them
  // exactly as it amplifies true sources.
  std::printf("mimic-source vs SSF (forged source tags; true bias s = 2):\n\n");
  Table mimic({"byz fraction", "byz agents", "correct fraction"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    mimic.cell(fractions[i], 3)
        .cell(static_cast<std::uint64_t>(fractions[i] *
                                         static_cast<double>(cfg.n - 2)))
        .cell(stats[mimic_base + i].mean_steady_fraction, 3)
        .end_row();
  }
  mimic.print(std::cout);
  std::printf(
      "\nexpected shape: correct while forged tags are rare relative to the "
      "true bias,\ncollapsing once fake sources outvote real ones — why the "
      "model must treat\nsourcehood as an unforgeable input (Section 1.3).\n");
  return 0;
}
