// PERF — machine-readable benchmark of the block-parallel round kernel and
// the per-round observation-sampler cache (DESIGN.md §9).
//
// For each (engine, n, h) configuration this times:
//   * legacy_serial — a faithful replica of the pre-kernel AggregateEngine
//     inner loop: one conditional-binomial multinomial decomposition per
//     agent per round, no sampler cache, strictly serial (for the exact
//     engine the replica is the serial kernel itself, whose per-agent work
//     is unchanged);
//   * the current kernel at several lane counts with the cache on, plus
//     one lane with the cache off, each reported as rounds/sec and as a
//     speedup over the legacy serial baseline;
//   * for aggregate configs, one compiled-fast-path row (DESIGN.md §13):
//     the mirrored CompiledPopulation under set_compiled(true), one lane,
//     cache on — the focused compiled-vs-interpreted comparison lives in
//     perf_compiled_path, this row just keeps the kernel bench's speedup
//     ladder complete (legacy → kernel → compiled) in one JSON.
//
// Output is JSON (schema documented in EXPERIMENTS.md) written to --out
// (default BENCH_round_kernel.json in the working directory), so CI can
// archive it and trend lines can be diffed.  `--smoke` shrinks sizes and
// repetitions to seconds for the CI gate.  hardware_threads is recorded
// because lane counts beyond the physical core count cannot speed anything
// up — on a 1-core runner every threads>1 row measures pure overhead.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>  // hardware_concurrency only; pooling lives in
                   // common/thread_pool (lint: bench is allowlisted)
#include <vector>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Config {
  const char* engine;  // "aggregate" | "exact"
  std::uint64_t n;
  std::uint64_t h;
};

struct Variant {
  unsigned threads;
  bool cache;
  double rounds_per_sec;
};

struct ConfigResult {
  Config config;
  std::uint64_t rounds_timed;
  double legacy_rounds_per_sec;
  std::vector<Variant> variants;
  double compiled_rounds_per_sec = 0.0;  // 0: no compiled path (exact engine)
};

SourceFilter make_protocol(const Config& cfg) {
  const PopulationConfig pop{.n = cfg.n, .s1 = 1, .s0 = 0};
  return SourceFilter(pop, Holdings{cfg.h}, Delta{/*delta=*/0.2},
                      C1{/*c1=*/2.0});
}

// The seed AggregateEngine round: per-round q, then one multinomial
// decomposition per agent drawn from the master stream.
void legacy_aggregate_round(SourceFilter& protocol, const NoiseMatrix& noise,
                            std::uint64_t h, std::uint64_t round, Rng& rng) {
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  std::vector<std::uint64_t> c(d, 0);
  for (std::uint64_t i = 0; i < n; ++i) ++c[protocol.display(i, round)];
  const Matrix channel = noise.matrix();
  std::vector<double> q(d, 0.0);
  for (std::size_t to = 0; to < d; ++to) {
    double w = 0.0;
    for (std::size_t from = 0; from < d; ++from) {
      w += static_cast<double>(c[from]) * channel(from, to);
    }
    q[to] = w;
  }
  SymbolCounts obs(d);
  for (std::uint64_t i = 0; i < n; ++i) {
    obs.clear();
    sample_multinomial(rng, h, q, std::span<std::uint64_t>(obs.c.data(), d));
    protocol.update(i, round, obs, rng);
  }
}

// The seed ExactEngine round (h uniform pulls per agent, serial).
void legacy_exact_round(SourceFilter& protocol, const NoiseMatrix& noise,
                        std::uint64_t h, std::uint64_t round, Rng& rng) {
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  std::vector<Symbol> displays(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    displays[i] = protocol.display(i, round);
  }
  SymbolCounts obs(d);
  for (std::uint64_t i = 0; i < n; ++i) {
    obs.clear();
    for (std::uint64_t k = 0; k < h; ++k) {
      ++obs[noise.corrupt(displays[rng.next_below(n)], rng)];
    }
    protocol.update(i, round, obs, rng);
  }
}

// All timing runs share one named seed: throughput, not the
// stream identity, is what these measurements compare.
constexpr std::uint64_t kTimingSeed = 1;

// The compiled fast path runs the SF population as a CompiledPopulation
// (same schedule as make_protocol, so the horizon and per-round work match)
// under AggregateEngine with set_compiled(true): single lane, cache on.
double time_compiled_rounds(const Config& cfg, std::uint64_t rounds) {
  const PopulationConfig pop{.n = cfg.n, .s1 = 1, .s0 = 0};
  const SfSchedule schedule =
      make_sf_schedule(pop, Holdings{cfg.h}, Delta{0.2}, C1{2.0});
  const auto protocol = make_compiled_sf(pop, schedule);
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  AggregateEngine engine;
  engine.set_compiled(true);
  Rng rng(kTimingSeed);
  const std::uint64_t horizon = protocol->planned_rounds();
  engine.step(*protocol, noise, Holdings{cfg.h}, 0, rng);  // warm-up (untimed)
  const auto start = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(*protocol, noise, Holdings{cfg.h}, (r + 1) % horizon, rng);
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(rounds) / (elapsed > 0.0 ? elapsed : 1e-9);
}

template <typename RoundFn>
double time_rounds(const Config& cfg, std::uint64_t rounds, RoundFn&& fn) {
  SourceFilter protocol = make_protocol(cfg);
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  Rng rng(kTimingSeed);
  const std::uint64_t horizon = protocol.planned_rounds();
  fn(protocol, noise, 0 % horizon, rng);  // warm-up round (untimed)
  const auto start = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    fn(protocol, noise, (r + 1) % horizon, rng);
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(rounds) / (elapsed > 0.0 ? elapsed : 1e-9);
}

ConfigResult run_config(const Config& cfg, bool smoke,
                        std::span<const unsigned> lane_counts) {
  const bool aggregate = std::strcmp(cfg.engine, "aggregate") == 0;

  const auto legacy = [&](SourceFilter& p, const NoiseMatrix& nm,
                          std::uint64_t round, Rng& rng) {
    if (aggregate) {
      legacy_aggregate_round(p, nm, cfg.h, round, rng);
    } else {
      legacy_exact_round(p, nm, cfg.h, round, rng);
    }
  };

  // Calibrate the repetition count off one legacy round so every variant of
  // a config is timed over the same number of rounds.
  std::uint64_t rounds = 3;
  if (!smoke) {
    const double probe = time_rounds(cfg, 1, legacy);
    const double per_round = 1.0 / probe;
    const double target_seconds = 0.5;
    double r = target_seconds / (per_round > 0.0 ? per_round : 1e-9);
    if (r < 3.0) r = 3.0;
    if (r > 200.0) r = 200.0;
    rounds = static_cast<std::uint64_t>(r);
  }

  ConfigResult result{.config = cfg,
                      .rounds_timed = rounds,
                      .legacy_rounds_per_sec = time_rounds(cfg, rounds, legacy),
                      .variants = {}};

  // One engine per variant: the pool spins up once, not per round.  Note
  // the kernel side still pays its replay-digest absorption (one hash per
  // agent per round), which the legacy replica omits — the reported
  // speedups are conservative for the kernel.
  const auto kernel = [&](unsigned threads, bool cache) {
    std::unique_ptr<Engine> engine;
    if (aggregate) {
      engine = std::make_unique<AggregateEngine>();
    } else {
      engine = std::make_unique<ExactEngine>();
    }
    engine->set_threads(threads);
    engine->set_sampler_cache(cache);
    return time_rounds(cfg, rounds,
                       [&](SourceFilter& p, const NoiseMatrix& nm,
                           std::uint64_t round, Rng& rng) {
                         engine->step(p, nm, Holdings{cfg.h}, round, rng);
                       });
  };

  for (const unsigned t : lane_counts) {
    result.variants.push_back(
        Variant{.threads = t, .cache = true,
                .rounds_per_sec = kernel(t, true)});
  }
  result.variants.push_back(
      Variant{.threads = 1, .cache = false,
              .rounds_per_sec = kernel(1, false)});
  if (aggregate) {
    result.compiled_rounds_per_sec = time_compiled_rounds(cfg, rounds);
  }
  return result;
}

void emit_json(std::FILE* out, bool smoke,
               std::span<const ConfigResult> results) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"round_kernel\",\n");
  std::fprintf(out, "  \"schema_version\": 3,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  // Honest-reporting fields: on a 1-core machine no threads>1 row can beat
  // its threads=1 sibling, so lane scaling simply was not measured — the
  // multi-lane rows quantify pool overhead, nothing else.
  std::fprintf(out, "  \"lane_scaling_measured\": %s,\n",
               hw > 1 ? "true" : "false");
  if (hw <= 1) {
    std::fprintf(out,
                 "  \"caveat\": \"single hardware thread: threads>1 rows "
                 "measure pool overhead only; lane scaling requires a "
                 "multi-core runner\",\n");
  }
  std::fprintf(out, "  \"block_size\": 4096,\n");
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"engine\": \"%s\",\n", r.config.engine);
    std::fprintf(out, "      \"n\": %llu,\n",
                 static_cast<unsigned long long>(r.config.n));
    std::fprintf(out, "      \"h\": %llu,\n",
                 static_cast<unsigned long long>(r.config.h));
    std::fprintf(out, "      \"rounds_timed\": %llu,\n",
                 static_cast<unsigned long long>(r.rounds_timed));
    std::fprintf(out,
                 "      \"legacy_serial\": { \"rounds_per_sec\": %.4f },\n",
                 r.legacy_rounds_per_sec);
    std::fprintf(out, "      \"variants\": [\n");
    for (std::size_t v = 0; v < r.variants.size(); ++v) {
      const auto& var = r.variants[v];
      std::fprintf(out,
                   "        { \"threads\": %u, \"cache\": %s, "
                   "\"rounds_per_sec\": %.4f, "
                   "\"speedup_vs_legacy_serial\": %.4f }%s\n",
                   var.threads, var.cache ? "true" : "false",
                   var.rounds_per_sec,
                   var.rounds_per_sec / r.legacy_rounds_per_sec,
                   v + 1 < r.variants.size() ? "," : "");
    }
    std::fprintf(out, "      ]%s\n",
                 r.compiled_rounds_per_sec > 0.0 ? "," : "");
    if (r.compiled_rounds_per_sec > 0.0) {
      std::fprintf(out,
                   "      \"compiled\": { \"threads\": 1, \"cache\": true, "
                   "\"rounds_per_sec\": %.4f, "
                   "\"speedup_vs_legacy_serial\": %.4f }\n",
                   r.compiled_rounds_per_sec,
                   r.compiled_rounds_per_sec / r.legacy_rounds_per_sec);
    }
    std::fprintf(out, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
}

// Deterministic check of the observation-sampler amortization gate
// (rng/observation_cache.hpp): the sampler must pick its mode from
// (h, d, expected_draws) alone — inverse CDF only when the outcome space
// amortizes over the round's draws — and never from the cache toggle.
// Returns false (and prints) on any violation; wired into --smoke so the CI
// perf gate fails loudly if the gate regresses.
bool check_sampler_gate() {
  const double w[2] = {0.7, 0.3};
  const std::span<const double> weights(w, 2);
  ObservationSampler s;
  struct Case {
    std::uint64_t h;
    std::uint64_t draws;
    ObservationSampler::Mode want;
  };
  const Case cases[] = {
      // h+1 = 65 outcomes over 4 draws: table build would dominate.
      {64, 4, ObservationSampler::Mode::Decomposition},
      // Same outcome space amortized over 20000 draws: inverse CDF.
      {64, 20000, ObservationSampler::Mode::InverseCdf},
      // Outcome space above kMaxOutcomes: decomposition regardless of draws.
      {ObservationSampler::kMaxOutcomes + 1, 1000000,
       ObservationSampler::Mode::Decomposition},
  };
  for (const auto& c : cases) {
    for (const bool cache : {false, true}) {
      s.reset(c.h, weights, cache, c.draws);
      if (s.mode() != c.want) {
        std::fprintf(stderr,
                     "sampler gate violation: h=%llu draws=%llu cache=%d "
                     "picked mode %d\n",
                     static_cast<unsigned long long>(c.h),
                     static_cast<unsigned long long>(c.draws),
                     cache ? 1 : 0, static_cast<int>(s.mode()));
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_round_kernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_round_kernel [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  if (smoke && !check_sampler_gate()) {
    std::fprintf(stderr, "perf_round_kernel: sampler gate check FAILED\n");
    return 1;
  }
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "perf_round_kernel: WARNING: 1 hardware thread — threads>1 rows "
        "measure pool overhead only (lane_scaling_measured=false)\n");
  }

  std::vector<Config> configs;
  if (smoke) {
    configs.push_back(Config{.engine = "aggregate", .n = 20000, .h = 4});
    configs.push_back(Config{.engine = "exact", .n = 2000, .h = 8});
  } else {
    configs.push_back(Config{.engine = "aggregate", .n = 1000000, .h = 4});
    configs.push_back(Config{.engine = "aggregate", .n = 100000, .h = 64});
    configs.push_back(Config{.engine = "exact", .n = 20000, .h = 16});
  }
  const unsigned lanes_full[] = {1, 2, 4, 8};
  const unsigned lanes_smoke[] = {1, 2};
  const std::span<const unsigned> lanes =
      smoke ? std::span<const unsigned>(lanes_smoke)
            : std::span<const unsigned>(lanes_full);

  std::vector<ConfigResult> results;
  for (const auto& cfg : configs) {
    std::printf("perf_round_kernel: %s n=%llu h=%llu ...\n", cfg.engine,
                static_cast<unsigned long long>(cfg.n),
                static_cast<unsigned long long>(cfg.h));
    results.push_back(run_config(cfg, smoke, lanes));
    const auto& r = results.back();
    std::printf("  legacy serial: %.2f rounds/s\n", r.legacy_rounds_per_sec);
    for (const auto& v : r.variants) {
      std::printf("  threads=%u cache=%s: %.2f rounds/s (%.2fx)\n", v.threads,
                  v.cache ? "on" : "off", v.rounds_per_sec,
                  v.rounds_per_sec / r.legacy_rounds_per_sec);
    }
    if (r.compiled_rounds_per_sec > 0.0) {
      std::printf("  compiled (1 lane): %.2f rounds/s (%.2fx)\n",
                  r.compiled_rounds_per_sec,
                  r.compiled_rounds_per_sec / r.legacy_rounds_per_sec);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_round_kernel: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  emit_json(out, smoke, results);
  std::fclose(out);
  std::printf("perf_round_kernel: wrote %s\n", out_path.c_str());
  return 0;
}
