// THEORY — numerical validation of the probability toolbox of Section 5.1:
// the exact advantage of a biased Rademacher sum vs the Lemma 21/22 lower
// bounds, and Claim 19's P(X = 1) bound — printed over the grids the
// analysis sweeps through.  Complements the gtest suite (test_theory.cpp)
// with human-readable tables showing the slack of each inequality.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THEORY / tab_theory_validation",
         "Section 5.1 toolbox: exact values vs the bounds of Claim 19 and "
         "Lemmas 21/22 (the inequalities the weak-opinion analysis rests "
         "on).");

  // Lemma 22: P(X>0) − P(X<0) for a sum of m Rad(1/2+theta).
  Table lemma22({"m", "theta", "exact advantage", "Lemma 22 bound",
                 "Lemma 21 g", "slack (exact - L22)"});
  for (std::uint64_t m : {5ULL, 25ULL, 100ULL, 1000ULL, 10000ULL}) {
    for (double theta : {0.005, 0.02, 0.1, 0.3}) {
      const double exact = rademacher_sum_advantage_exact(theta, m);
      const double l22 = lemma22_lower_bound(theta, m);
      const double g = lemma21_g(theta, m);
      lemma22.cell(m)
          .cell(theta, 3)
          .cell(exact, 5)
          .cell(l22, 5)
          .cell(g, 5)
          .cell(exact - l22, 5)
          .end_row();
    }
  }
  args.emit(lemma22, "_lemma22");

  // Claim 19: P(X = 1) ≥ np/e for np ≤ 1.
  Table claim19({"n", "np", "exact P(X=1)", "np/e bound", "slack"});
  for (std::uint64_t n : {2ULL, 10ULL, 100ULL, 10000ULL}) {
    for (double np : {0.1, 0.5, 1.0}) {
      const double p = np / static_cast<double>(n);
      const double exact = binomial_pmf(n, 1, p);
      const double bound = claim19_lower_bound(n, p);
      claim19.cell(n)
          .cell(np, 2)
          .cell(exact, 5)
          .cell(bound, 5)
          .cell(exact - bound, 5)
          .end_row();
    }
  }
  args.emit(claim19, "_claim19");

  // Theorem 4 vs Theorem 3 across n: the predicted log-factor gap.
  Table gap({"n", "h", "Thm4 UB expr", "Thm3 LB expr", "UB/LB", "ln n"});
  for (std::uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    for (std::uint64_t h : {std::uint64_t{1}, n}) {
      const double ub =
          theorem4_upper_bound(AgentCount{n}, Holdings{h}, Delta{0.25},
                               SourceCount{1}, SourceCount{0});
      const double lb = theorem3_lower_bound(AgentCount{n}, Holdings{h},
                                             Delta{0.25}, SourceCount{1}, 2);
      gap.cell(n)
          .cell(h)
          .cell(ub, 0)
          .cell(lb, 2)
          .cell(ub / lb, 1)
          .cell(std::log(static_cast<double>(n)), 1)
          .end_row();
    }
  }
  args.emit(gap, "_gap");
  std::printf(
      "expected shape: every slack column is non-negative (the bounds are\n"
      "valid) and the Thm4/Thm3 ratio tracks a multiple of ln n — the\n"
      "paper's 'tight up to a logarithmic factor' claim in closed form.\n");
  return 0;
}
