// THM4-H — the paper's central message: "increasing the sample size can
// linearly accelerate information spreading".  Fixed n, sweep h in powers
// of 4; Theorem 4 predicts T ≈ C/h + O(log n), so T·h should stay roughly
// constant until the additive log n floor is reached.
//
// The sweep runs through the experiment scheduler (analysis/scheduler.hpp):
// one global (cell × repetition) queue, `--ci-halfwidth` early stopping,
// `--cache-dir` result reuse.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-H / tab_thm4_scaling_h",
         "Theorem 4: rounds scale as m/h — a linear speedup in the sample "
         "size h, saturating at the O(log n) floor.");

  const std::uint64_t n = 4096;
  const double delta = 0.2;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(2, delta);

  const auto hs = geometric_grid(4, n, 4.0);
  std::vector<ExperimentCell> cells;
  for (std::uint64_t h : hs) {
    cells.push_back(ExperimentCell{
        .label = "h=" + std::to_string(h),
        .make_protocol = sf_factory(pop, Holdings{h}, Delta{delta}),
        .noise = noise,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = h},
        .seed = 500 + h,
        .protocol_digest = sf_digest(pop, Holdings{h}, Delta{delta})});
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 8));

  Table table({"h", "success", "rounds T", "first-correct", "T*h"});
  for (std::size_t i = 0; i < hs.size(); ++i) {
    const double t = stats[i].mean_rounds_run;
    table.cell(hs[i])
        .cell(stats[i].success_rate, 2)
        .cell(t, 0)
        .cell(stats[i].mean_convergence_round, 1)
        .cell(t * static_cast<double>(hs[i]), 0)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: T drops ~linearly in h (T*h near-constant) until the\n"
      "h log n term of Eq. 19 dominates; success stays ~1 throughout.\n");
  return 0;
}
