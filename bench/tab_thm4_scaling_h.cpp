// THM4-H — the paper's central message: "increasing the sample size can
// linearly accelerate information spreading".  Fixed n, sweep h in powers
// of 4; Theorem 4 predicts T ≈ C/h + O(log n), so T·h should stay roughly
// constant until the additive log n floor is reached.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-H / tab_thm4_scaling_h",
         "Theorem 4: rounds scale as m/h — a linear speedup in the sample "
         "size h, saturating at the O(log n) floor.");

  const std::uint64_t n = 4096;
  const double delta = 0.2;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(2, delta);

  Table table({"h", "success", "rounds T", "first-correct", "T*h"});
  for (std::uint64_t h : geometric_grid(4, n, 4.0)) {
    const auto results = run_repetitions(
        sf_factory(pop, h, delta), noise, pop.correct_opinion(),
        RunConfig{.h = h},
        RepeatOptions{.repetitions = 8, .seed = 500 + h});
    const double t = static_cast<double>(results.front().rounds_run);
    table.cell(h)
        .cell(success_rate(results), 2)
        .cell(t, 0)
        .cell(mean_convergence_round(results), 1)
        .cell(t * static_cast<double>(h), 0)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: T drops ~linearly in h (T*h near-constant) until the\n"
      "h log n term of Eq. 19 dominates; success stays ~1 throughout.\n");
  return 0;
}
