// PERF — google-benchmark micro-benchmarks of the simulation substrate:
// the binomial sampler across regimes, noise application, and full engine
// rounds as a function of (n, h).  These document why the aggregate engine
// makes the paper's h = n regime tractable: its round cost is independent
// of h, while the exact engine pays Θ(n·h).
#include <benchmark/benchmark.h>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;

// One substream per micro-benchmark: kBenchSeed + <stream id>.
constexpr std::uint64_t kBenchSeed = 900;

void BM_BinomialSmallNp(benchmark::State& state) {
  Rng rng(kBenchSeed + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_binomial(rng, 20, 0.2));
  }
}
BENCHMARK(BM_BinomialSmallNp);

void BM_BinomialBtrs(benchmark::State& state) {
  Rng rng(kBenchSeed + 2);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_binomial(rng, n, 0.3));
  }
}
BENCHMARK(BM_BinomialBtrs)->Arg(1000)->Arg(1000000)->Arg(1000000000);

void BM_Multinomial4(benchmark::State& state) {
  Rng rng(kBenchSeed + 3);
  const double w[4] = {0.4, 0.3, 0.2, 0.1};
  std::uint64_t c[4];
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sample_multinomial(rng, n, w, c);
    benchmark::DoNotOptimize(c[0]);
  }
}
BENCHMARK(BM_Multinomial4)->Arg(100)->Arg(100000);

void BM_NoiseCorrupt(benchmark::State& state) {
  Rng rng(kBenchSeed + 4);
  const auto noise = NoiseMatrix::uniform(4, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.corrupt(2, rng));
  }
}
BENCHMARK(BM_NoiseCorrupt);

// One full SF round under each engine.  Aggregate: O(n·|Σ|) regardless of
// h.  Exact: Θ(n·h) — run only at small sizes.
void BM_AggregateEngineRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto h = static_cast<std::uint64_t>(state.range(1));
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const double delta = 0.2;
  SourceFilter sf(pop, Holdings{h}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  const auto noise = NoiseMatrix::uniform(2, delta);
  Rng rng(kBenchSeed + 5);
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(sf, noise, Holdings{h}, round++ % sf.planned_rounds(), rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AggregateEngineRound)
    ->Args({1000, 1})
    ->Args({1000, 1000})
    ->Args({100000, 100000})
    ->Args({1000000, 1000000})
    ->Unit(benchmark::kMillisecond);

void BM_ExactEngineRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto h = static_cast<std::uint64_t>(state.range(1));
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const double delta = 0.2;
  SourceFilter sf(pop, Holdings{h}, Delta{delta}, C1{2.0});
  ExactEngine engine;
  const auto noise = NoiseMatrix::uniform(2, delta);
  Rng rng(kBenchSeed + 6);
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(sf, noise, Holdings{h}, round++ % sf.planned_rounds(), rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * h));
}
BENCHMARK(BM_ExactEngineRound)
    ->Args({1000, 1})
    ->Args({1000, 100})
    ->Args({10000, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
