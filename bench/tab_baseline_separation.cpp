// SEP — the separation story of §1.2/§3: classic PULL dynamics (voter,
// local majority, repeated majority without source filtering) cannot
// reliably follow a single noisy source, while SF can — and SF's advantage
// is what the Ω(n) vs O(log n) separation is about.
//
// Every baseline gets the same generous round budget that SF needs, times
// 3; we report success rates and (where meaningful) convergence rounds.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

ProtocolFactory voter_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<VoterProtocol>(pop, init);
  };
}

ProtocolFactory majority_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<MajorityDynamics>(pop, init);
  };
}

ProtocolFactory repeated_factory(const PopulationConfig& pop,
                                 std::uint64_t window) {
  return [pop, window](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<RepeatedMajority>(pop, window, init);
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("SEP / tab_baseline_separation",
         "Baselines vs SF with a single noisy source: copy/majority "
         "dynamics lock onto an arbitrary value; SF follows the source.");

  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const std::uint64_t reps = 8;

  Table table({"n", "h", "protocol", "success", "mean first-correct",
               "budget"});
  for (std::uint64_t n : {500ULL, 2000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    for (std::uint64_t h : {std::uint64_t{16}, n}) {
      // SF defines the reference budget.
      SourceFilter ref(pop, Holdings{h}, Delta{delta}, kC1);
      const std::uint64_t budget = 3 * ref.planned_rounds();

      struct Row {
        const char* name;
        ProtocolFactory factory;
      };
      const Row rows[] = {
          {"SF", sf_factory(pop, Holdings{h}, Delta{delta})},
          {"voter", voter_factory(pop)},
          {"majority", majority_factory(pop)},
          {"repeated-majority", repeated_factory(pop, ref.schedule().m)},
      };
      for (const auto& row : rows) {
        const std::uint64_t max_rounds =
            std::string(row.name) == "SF" ? 0 : budget;
        const auto results = run_repetitions(
            row.factory, noise, pop.correct_opinion(),
            RunConfig{.h = h, .max_rounds = max_rounds},
            RepeatOptions{.repetitions = reps,
                          .seed = 12000 + n + h * 3});
        table.cell(n)
            .cell(h)
            .cell(row.name)
            .cell(success_rate(results), 2)
            // Renders "never" when no repetition converged (the old -1.0
            // sentinel existed only to mask the kNever cast).
            .cell(mean_convergence_round(results), 1)
            .cell(max_rounds == 0 ? ref.planned_rounds() : budget)
            .end_row();
      }
    }
  }
  args.emit(table);
  std::printf(
      "expected shape: SF success ~1 everywhere; voter/majority/repeated-\n"
      "majority succeed only ~coin-flip often (they reach *some* consensus\n"
      "fast, but not the source's) — the separation that motivates SF's\n"
      "listening phase.  (first-correct = never: no repetition converged.)\n");
  return 0;
}
