// SEP — the separation story of §1.2/§3: classic PULL dynamics (voter,
// local majority, repeated majority without source filtering) cannot
// reliably follow a single noisy source, while SF can — and SF's advantage
// is what the Ω(n) vs O(log n) separation is about.
//
// Every baseline gets the same generous round budget that SF needs, times
// 3; we report success rates and (where meaningful) convergence rounds.
//
// All cells go through one experiment-scheduler queue
// (analysis/scheduler.hpp): `--threads` drains cells concurrently,
// `--ci-halfwidth`/`--max-reps` opt into adaptive early stopping, and
// `--cache-dir` reuses previously computed repetitions.  Cell seeds keep the
// legacy run_repetitions derivation (12000 + n + h·3, shared by the four
// protocols of one (n, h) group), so trajectories are bit-identical to the
// pre-scheduler bench; the cells stay distinct in the cache through their
// protocol digests.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

ProtocolFactory voter_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<VoterProtocol>(pop, init);
  };
}

ProtocolFactory majority_factory(const PopulationConfig& pop) {
  return [pop](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<MajorityDynamics>(pop, init);
  };
}

ProtocolFactory repeated_factory(const PopulationConfig& pop,
                                 std::uint64_t window) {
  return [pop, window](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<RepeatedMajority>(pop, window, init);
  };
}

// Protocol-construction digests for the baseline factories above, mirroring
// bench_common's sf_digest/ssf_digest: protocol type plus every captured
// construction parameter.
std::uint64_t voter_digest(const PopulationConfig& pop) {
  return CellKey().str("VoterProtocol").u64(pop.n).u64(pop.s1).u64(pop.s0)
      .digest();
}

std::uint64_t majority_digest(const PopulationConfig& pop) {
  return CellKey().str("MajorityDynamics").u64(pop.n).u64(pop.s1).u64(pop.s0)
      .digest();
}

std::uint64_t repeated_digest(const PopulationConfig& pop,
                              std::uint64_t window) {
  return CellKey().str("RepeatedMajority").u64(pop.n).u64(pop.s1).u64(pop.s0)
      .u64(window).digest();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("SEP / tab_baseline_separation",
         "Baselines vs SF with a single noisy source: copy/majority "
         "dynamics lock onto an arbitrary value; SF follows the source.");

  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const std::uint64_t reps = 8;

  struct Row {
    std::uint64_t n;
    std::uint64_t h;
    const char* name;
    std::uint64_t budget_shown;  // SF planned rounds, or the 3x budget
  };
  std::vector<Row> grid;
  std::vector<ExperimentCell> cells;
  for (std::uint64_t n : {500ULL, 2000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    for (std::uint64_t h : {std::uint64_t{16}, n}) {
      // SF defines the reference budget.
      SourceFilter ref(pop, Holdings{h}, Delta{delta}, kC1);
      const std::uint64_t budget = 3 * ref.planned_rounds();
      const std::uint64_t seed = 12000 + n + h * 3;

      struct Proto {
        const char* name;
        ProtocolFactory factory;
        std::uint64_t digest;
      };
      const Proto protos[] = {
          {"SF", sf_factory(pop, Holdings{h}, Delta{delta}),
           sf_digest(pop, Holdings{h}, Delta{delta})},
          {"voter", voter_factory(pop), voter_digest(pop)},
          {"majority", majority_factory(pop), majority_digest(pop)},
          {"repeated-majority", repeated_factory(pop, ref.schedule().m),
           repeated_digest(pop, ref.schedule().m)},
      };
      for (const auto& proto : protos) {
        const bool is_sf = std::string(proto.name) == "SF";
        const std::uint64_t max_rounds = is_sf ? 0 : budget;
        grid.push_back({n, h, proto.name,
                        is_sf ? ref.planned_rounds() : budget});
        cells.push_back(ExperimentCell{
            .label = std::string(proto.name) + " n=" + std::to_string(n) +
                     " h=" + std::to_string(h),
            .make_protocol = proto.factory,
            .noise = noise,
            .correct = pop.correct_opinion(),
            .cfg = RunConfig{.h = h, .max_rounds = max_rounds},
            .seed = seed,
            .protocol_digest = proto.digest});
      }
    }
  }
  const auto stats = run_experiment(cells, scheduler_options(args, reps));
  warn_if_degraded(stats);

  Table table({"n", "h", "protocol", "success", "mean first-correct",
               "budget"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Row& row = grid[i];
    table.cell(row.n)
        .cell(row.h)
        .cell(row.name)
        .cell(stats[i].success_rate, 2)
        // Renders "never" when no repetition converged (the old -1.0
        // sentinel existed only to mask the kNever cast).
        .cell(stats[i].mean_convergence_round, 1)
        .cell(row.budget_shown)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: SF success ~1 everywhere; voter/majority/repeated-\n"
      "majority succeed only ~coin-flip often (they reach *some* consensus\n"
      "fast, but not the source's) — the separation that motivates SF's\n"
      "listening phase.  (first-correct = never: no repetition converged.)\n");
  return 0;
}
