// 2PARTY — the lower-bound mechanism made visible (Footnote 3 / [19]):
// transferring one bit over a δ-noisy channel with failure ≤ x needs
// m(x, δ) messages; in PULL(h) a non-source receives only ~h·s/n
// source-touching samples per round, so rounds ≳ m(x, δ)·n/(s·h) — the
// Theorem 3 shape.  We print m(x, δ) exactly (optimal majority decoding)
// and the implied PULL(1) round requirement next to the measured SF time.
#include "bench_common.hpp"

#include "noisypull/theory/two_party.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("2PARTY / tab_two_party",
         "The (m, x, delta)-Two-Party reduction behind the lower bounds: "
         "messages needed for reliable bit transfer, and the implied "
         "PULL(h) round requirement.");

  // m(x, δ): exact message requirements.
  Table messages({"delta", "m for x=0.25", "m for x=0.05", "m for x=1e-3",
                  "m(1e-3)*(1-2d)^2"});
  for (double delta : {0.05, 0.1, 0.2, 0.3, 0.4, 0.45}) {
    const auto m25 = two_party_messages_needed(0.25, delta);
    const auto m05 = two_party_messages_needed(0.05, delta);
    const auto m3 = two_party_messages_needed(1e-3, delta);
    const double margin = 1 - 2 * delta;
    messages.cell(delta, 2)
        .cell(m25)
        .cell(m05)
        .cell(m3)
        .cell(static_cast<double>(m3) * margin * margin, 1)
        .end_row();
  }
  args.emit(messages, "_messages");

  // Translation to PULL rounds vs the measured SF schedule and Theorem 3.
  const double delta = 0.25;
  const double x = 0.001;
  Table rounds({"n", "h", "two-party rounds", "Thm3 LB", "SF schedule T"});
  for (std::uint64_t n : {1000ULL, 4000ULL, 16000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    for (std::uint64_t h : {std::uint64_t{1}, n}) {
      const SourceFilter sf(pop, Holdings{h}, Delta{delta}, kC1);
      rounds.cell(n)
          .cell(h)
          .cell(pull_rounds_via_two_party(AgentCount{n}, Holdings{h},
                                          SourceCount{1}, Delta{delta}, x),
                0)
          .cell(theorem3_lower_bound(AgentCount{n}, Holdings{h}, Delta{delta},
                                     SourceCount{1}, 2),
                1)
          .cell(sf.planned_rounds())
          .end_row();
    }
  }
  args.emit(rounds, "_rounds");
  std::printf(
      "expected shape: m(x, delta)·(1-2delta)^2 is roughly constant per x\n"
      "(the information-theoretic 1/(1-2delta)^2 price); the two-party\n"
      "round translation and the Theorem 3 expression agree up to constants\n"
      "and are both dominated by SF's schedule — the log-factor gap.\n");
  return 0;
}
