// CHURN — continuous-churn stress on SSF (an extension experiment: Theorem
// 5's adversary strikes once; here it keeps striking).  Each round every
// non-source resets with probability ρ, its state replaced per the policy.
// The steady-state correct fraction is mapped against ρ; the collapse point
// should track one-reset-per-memory-cycle, ρ* ≈ h/m (an agent must live
// through a full update cycle to re-learn the truth).
//
// The rate sweep runs as steady-state+churn cells on one experiment-
// scheduler queue (analysis/scheduler.hpp), so the bench honors the shared
// --threads / --cache-dir / --resume / --rep-timeout / --sweep-report flags.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("CHURN / tab_churn",
         "Continuous churn: steady-state fraction of correct agents vs the "
         "per-round reset probability (SSF, wrong-consensus resets).");

  const std::uint64_t n = 2000;
  const double delta = 0.05;
  const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(4, delta);

  const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta}, kC1);
  const double cycle =
      static_cast<double>((ref.memory_budget() + n - 1) / n);
  std::printf("memory cycle = %.0f rounds -> expected collapse near rate "
              "1/cycle = %.3f\n\n",
              cycle, 1.0 / cycle);

  const std::vector<double> churn_rates = {0.0,  0.001, 0.005, 0.01, 0.02,
                                           0.05, 0.1,   0.2,   0.4};
  std::vector<ExperimentCell> cells;
  for (const double rate : churn_rates) {
    ExperimentCell cell{
        .label = "churn rate=" + std::to_string(rate),
        .make_protocol = ssf_factory(pop, Holdings{n}, Delta{delta},
                                     CorruptionPolicy::None),
        .noise = noise,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n},
        .seed = 19000 + static_cast<std::uint64_t>(rate * 1000),
        .protocol_digest = ssf_digest(pop, Holdings{n}, Delta{delta},
                                      CorruptionPolicy::None)};
    cell.steady_state =
        SteadyStateSpec{.warmup = 4 * ref.convergence_deadline(),
                        .measure = 60,
                        .churn = ChurnConfig{
                            .rate = rate,
                            .policy = CorruptionPolicy::WrongConsensus}};
    cells.push_back(std::move(cell));
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 1));
  warn_if_degraded(stats);

  Table table({"churn rate", "rate x cycle", "mean correct fraction",
               "min correct fraction", "resets"});
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    const double rate = churn_rates[i];
    table.cell(rate, 3)
        .cell(rate * cycle, 2)
        .cell(stats[i].mean_steady_fraction, 3)
        .cell(stats[i].min_steady_fraction, 3)
        .cell(stats[i].total_resets)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: correct fraction ~1 while rate x cycle << 1, with a\n"
      "graceful decline tracking the fraction of agents mid-relearning;\n"
      "then a sharp phase transition (the population flips to the injected\n"
      "wrong consensus) once poisoned memories accumulate faster than one\n"
      "memory cycle can flush them — empirically near rate x cycle ~ 0.1.\n");
  return 0;
}
