// PUSH — the exponential PUSH/PULL separation of §1.5: under noisy PUSH(1)
// information spreading takes polylog(n) rounds (Feinerman–Haeupler–Korman
// 2017), while under noisy PULL(1) it takes Ω(nδ) rounds (Theorem 3), a gap
// this paper closes only by raising the sample size h.
//
// For each n we report: PushSpread under PUSH(1); SF under PULL(1) (its
// schedule is Θ(n log n) rounds); SF under PULL(n) (the paper's O(log n)
// regime); and the Theorem 3 PULL(1) lower-bound value.  δ = 0.1, within
// the simple cascade's reliability range (see push_spread.hpp).
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("PUSH / tab_push_vs_pull",
         "Exponential separation: noisy PUSH(1) spreads in polylog(n) "
         "rounds; noisy PULL(1) requires Omega(n delta) (Theorem 3); "
         "PULL(n) recovers O(log n) (Theorem 4).");

  const double delta = 0.1;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const std::uint64_t reps = 6;

  Table table({"n", "PUSH(1) T", "PUSH(1) success", "PULL(1) SF T",
               "PULL(1) LB (Thm 3)", "PULL(n) SF T", "PUSH(1) T / ln^2 n"});
  for (std::uint64_t n : {1000ULL, 2000ULL, 4000ULL, 8000ULL, 16000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};

    // PUSH(1): measured.
    double push_t = 0.0;
    std::uint64_t push_ok = 0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      PushSpread ps(pop, Holdings{1}, Delta{delta});
      AggregatePushEngine engine;
      Rng rng(16000 + n + rep);
      const auto r = run_push(ps, engine, noise, pop.correct_opinion(),
                              RunConfig{.h = 1}, rng);
      push_t = static_cast<double>(r.rounds_run);
      push_ok += r.all_correct_at_end ? 1 : 0;
    }

    // PULL(1): SF's schedule length (running it to completion at large n
    // costs Θ(n²·log n) work; the schedule is deterministic, and the
    // THM4-N bench validates that it does converge at the smaller sizes).
    const SourceFilter pull1(pop, Holdings{1}, Delta{delta}, kC1);
    const SourceFilter pulln(pop, Holdings{n}, Delta{delta}, kC1);
    const double lb = theorem3_lower_bound(AgentCount{n}, Holdings{1},
                                           Delta{delta}, SourceCount{1}, 2);
    const double logn = std::log(static_cast<double>(n));

    table.cell(n)
        .cell(push_t, 0)
        .cell(static_cast<double>(push_ok) / static_cast<double>(reps), 2)
        .cell(pull1.planned_rounds())
        .cell(lb, 0)
        .cell(pulln.planned_rounds())
        .cell(push_t / (logn * logn), 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: PUSH(1) rounds grow ~polylog(n) (flat last column)\n"
      "while both the PULL(1) lower bound and SF's PULL(1) schedule grow\n"
      "~linearly in n; PULL(n) matches PUSH asymptotics by brute sampling —\n"
      "the paper's point that sample size substitutes for PUSH's reliable\n"
      "intent.\n");
  return 0;
}
