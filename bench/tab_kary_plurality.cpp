// KARY — the multi-valued extension: the paper's problem statement assumes
// binary opinions "for simplicity"; KarySourceFilter generalizes the SF
// design (neutral cover phases + plurality boosting) to k opinions.  This
// bench validates plurality convergence across k, bias, and conflict
// patterns, and shows how the (1−kδ) margin shrinks the admissible noise.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("KARY / tab_kary_plurality",
         "k-ary Source Filter: convergence to the strict plurality among "
         "multi-valued sources (binary is the paper's k = 2 special case).");

  const std::uint64_t n = 2000;
  const std::uint64_t reps = 8;

  Table table({"k", "delta", "sources", "bias", "success", "rounds T"});
  struct Case {
    std::vector<std::uint64_t> sources;
    double delta;
  };
  const Case cases[] = {
      {{0, 1}, 0.2},           // binary, single source (SF's regime)
      {{1, 2}, 0.2},           // binary conflict, bias 1
      {{0, 0, 1}, 0.1},        // 3 opinions, single source
      {{1, 2, 1}, 0.1},        // 3 opinions, bias 1
      {{4, 1, 2}, 0.1},        // 3 opinions, clear plurality
      {{0, 0, 0, 1}, 0.06},    // 4 opinions, single source
      {{3, 2, 2, 1}, 0.06},    // 4 opinions, bias 1 with full conflict
      {{2, 1, 1, 1, 1, 1}, 0.04},  // 6 opinions, bias 1
  };
  for (const auto& c : cases) {
    KaryPopulation pop{.n = n, .sources = c.sources};
    const auto noise =
        NoiseMatrix::uniform(pop.num_opinions(), c.delta);
    std::uint64_t ok = 0;
    double t = 0.0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      KarySourceFilter ksf(pop, Holdings{n}, Delta{c.delta}, kC1);
      AggregateEngine engine;
      Rng rng(17000 + rep * 31 + pop.num_opinions());
      const auto r = run(ksf, engine, noise, pop.plurality_opinion(),
                         RunConfig{.h = n}, rng);
      ok += r.all_correct_at_end ? 1 : 0;
      t = static_cast<double>(r.rounds_run);
    }
    std::string sources_str;
    for (std::size_t i = 0; i < c.sources.size(); ++i) {
      sources_str += (i ? "/" : "") + std::to_string(c.sources[i]);
    }
    table.cell(static_cast<std::uint64_t>(pop.num_opinions()))
        .cell(c.delta, 2)
        .cell(sources_str)
        .cell(pop.bias())
        .cell(static_cast<double>(ok) / static_cast<double>(reps), 2)
        .cell(t, 0)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: success ~1 for every k at bias >= 1, with the\n"
      "admissible delta shrinking like 1/k (the (1-k*delta) margin) and T\n"
      "growing with k and with conflict.\n");
  return 0;
}
