// PERF — machine-readable benchmark of the compiled-automaton fast path
// (DESIGN.md §13) against the interpreted cached aggregate path.
//
// For each (protocol, n, h) configuration this times, on AggregateEngine
// with the sampler cache ON and one lane:
//   * interpreted_cached — the production protocol object (SourceFilter /
//     SelfStabilizingSourceFilter / AutomatonProtocol) through the virtual
//     display()/update() path, i.e. the pre-compiled production round loop;
//   * compiled — the mirrored CompiledPopulation with set_compiled(true):
//     memoized display table, (state id, outcome index) → packed-edge
//     update table, no virtual dispatch in the hot loop.  The default build
//     gate is left in place, so rounds whose fresh states would cost more
//     to compile than to interpret (SSF memory accumulation) honestly fall
//     back to the virtual path — the SSF row reports what a user of
//     --compiled actually gets, not a forced best case.
//
// Before any timing, the harness replays every smoke-sized configuration
// through BOTH paths (plus the compiled population's own virtual fallback)
// and requires identical replay digests and final opinions — the in-binary
// half of the bit-identity contract that tests/test_compiled_path.cpp pins
// under ctest.  A mismatch fails the run before a single number is printed.
//
// Output is JSON (schema documented in EXPERIMENTS.md) written to --out
// (default BENCH_compiled_path.json).  `--smoke` shrinks sizes for the CI
// gate, whose tolerance check compares the smoke compiled/interpreted
// throughput ratios against the committed full-run JSON.  hardware_threads
// is recorded for honest reporting; all rows here are single-lane, so the
// ratios are core-count-independent by construction.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>  // hardware_concurrency only; pooling lives in
                   // common/thread_pool (lint: bench is allowlisted)
#include <vector>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Config {
  const char* protocol;  // "table" | "sf" | "ssf"
  std::uint64_t n;
  std::uint64_t h;
};

// SF and Table run the binary channel at δ = 0.2 (the perf_round_kernel
// operating point); SSF needs δ < 1/4 with headroom for its 4-symbol
// alphabet, so it runs δ = 0.1 like the CLI's SSF default scenarios.
constexpr double kSfDelta = 0.2;
constexpr double kSsfDelta = 0.1;

// A 2-state follow-the-majority table automaton (ties flip a fair coin via
// the inverse-CDF default of TableAutomaton::compile): the minimal
// round-homogeneous Table protocol, so the Table row isolates pure
// dispatch + table-lookup cost with no schedule machinery on top.
std::shared_ptr<const TableAutomaton> make_majority_automaton() {
  std::vector<TableState> states(2);
  states[0] = TableState{.show = 0, .watch_a = 0, .watch_b = 1,
                         .if_greater = 0, .if_less = 1, .tie_a = 0,
                         .tie_b = 1};
  states[1] = TableState{.show = 1, .watch_a = 0, .watch_b = 1,
                         .if_greater = 0, .if_less = 1, .tie_a = 1,
                         .tie_b = 0};
  return std::make_shared<TableAutomaton>(2, std::move(states));
}

// Interpreted production protocol + its compiled mirror, built with the
// same agent layout so trajectories are comparable draw for draw.
struct Setup {
  std::unique_ptr<PullProtocol> interpreted;
  std::unique_ptr<CompiledPopulation> compiled;
  std::shared_ptr<const AgentAutomaton> keepalive;  // table: shared automaton
  NoiseMatrix noise;
  std::uint64_t horizon;  // 0: no intrinsic schedule, rounds just count up
};

Setup make_setup(const Config& cfg) {
  if (std::strcmp(cfg.protocol, "sf") == 0) {
    const PopulationConfig pop{.n = cfg.n, .s1 = 1, .s0 = 0};
    const SfSchedule schedule =
        make_sf_schedule(pop, Holdings{cfg.h}, Delta{kSfDelta}, C1{2.0});
    return Setup{.interpreted = std::make_unique<SourceFilter>(pop, schedule),
                 .compiled = make_compiled_sf(pop, schedule),
                 .keepalive = nullptr,
                 .noise = NoiseMatrix::uniform(2, kSfDelta),
                 .horizon = schedule.total_rounds()};
  }
  if (std::strcmp(cfg.protocol, "ssf") == 0) {
    const PopulationConfig pop{.n = cfg.n, .s1 = 1, .s0 = 0};
    const MemoryBudget m{ssf_memory_budget(pop, Delta{kSsfDelta}, C1{2.0})};
    return Setup{
        .interpreted = std::make_unique<SelfStabilizingSourceFilter>(
            SelfStabilizingSourceFilter::with_memory_budget(
                pop, Holdings{cfg.h}, m)),
        .compiled = make_compiled_ssf(pop, m),
        .keepalive = nullptr,
        .noise = NoiseMatrix::uniform(4, kSsfDelta),
        .horizon = 0};
  }
  NOISYPULL_CHECK(std::strcmp(cfg.protocol, "table") == 0,
                  "unknown bench protocol");
  auto automaton = make_majority_automaton();
  const std::uint64_t minority = cfg.n / 16;
  std::vector<AutomatonGroup> igroups{
      {cfg.n - minority, automaton.get(), 0}, {minority, automaton.get(), 1}};
  std::vector<CompiledGroup> cgroups{{cfg.n - minority, automaton, 0},
                                     {minority, automaton, 1}};
  return Setup{
      .interpreted = std::make_unique<AutomatonProtocol>(std::move(igroups)),
      .compiled =
          std::make_unique<CompiledPopulation>(std::move(cgroups), 0),
      .keepalive = automaton,
      .noise = NoiseMatrix::uniform(2, kSfDelta),
      .horizon = 0};
}

// All timing runs share one named seed: throughput, not the stream
// identity, is what these measurements compare.
constexpr std::uint64_t kTimingSeed = 1;

enum class Path {
  Interpreted,      // production protocol, virtual dispatch, cache on
  CompiledVirtual,  // CompiledPopulation through the virtual path
  Compiled,         // CompiledPopulation with set_compiled(true)
};

PullProtocol& pick_protocol(Setup& s, Path path) {
  return path == Path::Interpreted ? *s.interpreted : *s.compiled;
}

double time_rounds(const Config& cfg, Path path, std::uint64_t rounds) {
  Setup s = make_setup(cfg);
  PullProtocol& protocol = pick_protocol(s, path);
  AggregateEngine engine;
  engine.set_compiled(path == Path::Compiled);
  Rng rng(kTimingSeed);
  const std::uint64_t horizon = s.horizon;
  const auto round_at = [horizon](std::uint64_t r) {
    return horizon > 0 ? r % horizon : r;
  };
  engine.step(protocol, s.noise, Holdings{cfg.h}, round_at(0), rng);  // warm-up
  const auto start = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(protocol, s.noise, Holdings{cfg.h}, round_at(r + 1), rng);
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(rounds) / (elapsed > 0.0 ? elapsed : 1e-9);
}

struct RunOut {
  std::uint64_t digest = 0;
  std::vector<Opinion> opinions;
  bool operator==(const RunOut&) const = default;
};

RunOut replay(const Config& cfg, Path path, std::uint64_t rounds) {
  Setup s = make_setup(cfg);
  PullProtocol& protocol = pick_protocol(s, path);
  AggregateEngine engine;
  engine.set_compiled(path == Path::Compiled);
  Rng rng(kTimingSeed);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint64_t round = s.horizon > 0 ? r % s.horizon : r;
    engine.step(protocol, s.noise, Holdings{cfg.h}, round, rng);
  }
  RunOut out{.digest = engine.replay_digest(), .opinions = {}};
  out.opinions.reserve(protocol.num_agents());
  for (std::uint64_t i = 0; i < protocol.num_agents(); ++i) {
    out.opinions.push_back(protocol.opinion(i));
  }
  return out;
}

// The in-binary bit-identity gate: production interpreted, compiled-virtual
// fallback, and compiled fast path must agree on replay digest AND final
// opinions for every configuration given.  Runs before any timing so a
// broken fast path can never publish throughput numbers.
bool check_identity(std::span<const Config> configs, std::uint64_t rounds) {
  bool ok = true;
  for (const Config& cfg : configs) {
    const RunOut reference = replay(cfg, Path::Interpreted, rounds);
    for (const Path path : {Path::CompiledVirtual, Path::Compiled}) {
      const RunOut got = replay(cfg, path, rounds);
      if (got == reference) continue;
      ok = false;
      std::fprintf(stderr,
                   "identity violation: protocol=%s n=%llu h=%llu path=%s "
                   "(digest %016llx vs %016llx, opinions %s)\n",
                   cfg.protocol, static_cast<unsigned long long>(cfg.n),
                   static_cast<unsigned long long>(cfg.h),
                   path == Path::Compiled ? "compiled" : "compiled-virtual",
                   static_cast<unsigned long long>(got.digest),
                   static_cast<unsigned long long>(reference.digest),
                   got.opinions == reference.opinions ? "equal" : "DIFFER");
    }
  }
  return ok;
}

struct ConfigResult {
  Config config;
  std::uint64_t rounds_timed;
  double interpreted_rounds_per_sec;
  double compiled_rounds_per_sec;
};

ConfigResult run_config(const Config& cfg, bool smoke) {
  // Calibrate the repetition count off one interpreted round so both paths
  // of a config are timed over the same number of rounds.
  std::uint64_t rounds = 3;
  if (!smoke) {
    const double probe = time_rounds(cfg, Path::Interpreted, 1);
    const double per_round = 1.0 / probe;
    const double target_seconds = 0.5;
    double r = target_seconds / (per_round > 0.0 ? per_round : 1e-9);
    if (r < 3.0) r = 3.0;
    if (r > 200.0) r = 200.0;
    rounds = static_cast<std::uint64_t>(r);
  }
  return ConfigResult{
      .config = cfg,
      .rounds_timed = rounds,
      .interpreted_rounds_per_sec = time_rounds(cfg, Path::Interpreted, rounds),
      .compiled_rounds_per_sec = time_rounds(cfg, Path::Compiled, rounds)};
}

void emit_json(std::FILE* out, bool smoke,
               std::span<const ConfigResult> results) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"compiled_path\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  // All rows are single-lane AggregateEngine, sampler cache ON, so the
  // compiled/interpreted ratio does not depend on the core count; the field
  // is recorded anyway for honest provenance of the absolute numbers.
  std::fprintf(out, "  \"threads_per_row\": 1,\n");
  std::fprintf(out, "  \"identity_checked\": true,\n");
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"protocol\": \"%s\",\n", r.config.protocol);
    std::fprintf(out, "      \"n\": %llu,\n",
                 static_cast<unsigned long long>(r.config.n));
    std::fprintf(out, "      \"h\": %llu,\n",
                 static_cast<unsigned long long>(r.config.h));
    std::fprintf(out, "      \"rounds_timed\": %llu,\n",
                 static_cast<unsigned long long>(r.rounds_timed));
    std::fprintf(out,
                 "      \"interpreted_cached\": { \"rounds_per_sec\": %.4f "
                 "},\n",
                 r.interpreted_rounds_per_sec);
    std::fprintf(out, "      \"compiled\": { \"rounds_per_sec\": %.4f },\n",
                 r.compiled_rounds_per_sec);
    std::fprintf(out, "      \"speedup_compiled_vs_interpreted\": %.4f\n",
                 r.compiled_rounds_per_sec / r.interpreted_rounds_per_sec);
    std::fprintf(out, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_compiled_path.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_compiled_path [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // Identity gate at smoke sizes, in every mode (cheap: a few seconds).
  const Config identity_configs[] = {
      {.protocol = "table", .n = 20000, .h = 8},
      {.protocol = "sf", .n = 20000, .h = 4},
      {.protocol = "ssf", .n = 2000, .h = 4},
  };
  std::printf("perf_compiled_path: identity gate (3 protocols x 3 paths)\n");
  if (!check_identity(identity_configs, /*rounds=*/48)) {
    std::fprintf(stderr, "perf_compiled_path: identity gate FAILED\n");
    return 1;
  }
  std::printf("perf_compiled_path: identity gate passed\n");

  std::vector<Config> configs;
  if (smoke) {
    configs.assign(std::begin(identity_configs), std::end(identity_configs));
  } else {
    configs.push_back(Config{.protocol = "sf", .n = 1000000, .h = 4});
    configs.push_back(Config{.protocol = "sf", .n = 100000, .h = 16});
    configs.push_back(Config{.protocol = "table", .n = 1000000, .h = 8});
    configs.push_back(Config{.protocol = "ssf", .n = 20000, .h = 4});
  }

  std::vector<ConfigResult> results;
  for (const Config& cfg : configs) {
    std::printf("perf_compiled_path: %s n=%llu h=%llu ...\n", cfg.protocol,
                static_cast<unsigned long long>(cfg.n),
                static_cast<unsigned long long>(cfg.h));
    results.push_back(run_config(cfg, smoke));
    const auto& r = results.back();
    std::printf("  interpreted cached: %.2f rounds/s\n",
                r.interpreted_rounds_per_sec);
    std::printf("  compiled:           %.2f rounds/s (%.2fx)\n",
                r.compiled_rounds_per_sec,
                r.compiled_rounds_per_sec / r.interpreted_rounds_per_sec);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_compiled_path: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  emit_json(out, smoke, results);
  std::fclose(out);
  std::printf("perf_compiled_path: wrote %s\n", out_path.c_str());
  return 0;
}
