// THM3 — tightness against the lower bound of Boczkowski et al. (2018):
// any protocol needs Ω(nδ / (s²(1−δ|Σ|)²·h)) rounds.  Theorem 4 matches it
// up to a log factor; we print the measured SF running time divided by the
// lower-bound expression and show the ratio grows only ~logarithmically
// with n (it would blow up polynomially if SF were not near-optimal).
//
// The (n × h) grid drains through one experiment-scheduler queue
// (analysis/scheduler.hpp); `--threads`, `--ci-halfwidth`, `--max-reps`,
// and `--cache-dir` apply as in every tab_* bench.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM3 / tab_thm3_lower_bound",
         "Theorem 3 lower bound vs measured SF time: ratio should be "
         "Theta(log n) (tight up to the w.h.p. log factor).");

  const double delta = 0.25;
  const std::uint64_t s = 1;

  struct Row {
    std::uint64_t n;
    std::uint64_t h;
  };
  std::vector<Row> grid;
  std::vector<ExperimentCell> cells;
  for (std::uint64_t n : {512ULL, 1024ULL, 2048ULL, 4096ULL, 8192ULL,
                          16384ULL}) {
    const PopulationConfig pop{.n = n, .s1 = s, .s0 = 0};
    for (std::uint64_t h : {std::uint64_t{n / 16}, n}) {
      grid.push_back({n, h});
      cells.push_back(ExperimentCell{
          .label = "n=" + std::to_string(n) + " h=" + std::to_string(h),
          .make_protocol = sf_factory(pop, Holdings{h}, Delta{delta}),
          .noise = NoiseMatrix::uniform(2, delta),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = h},
          .seed = 7000 + n + h,
          .protocol_digest = sf_digest(pop, Holdings{h}, Delta{delta})});
    }
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 6));

  Table table({"n", "h", "rounds T", "LB = n*d/(s^2(1-2d)^2 h)", "T/LB",
               "(T/LB)/ln n", "success"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [n, h] = grid[i];
    const double t = stats[i].mean_rounds_run;
    const double lb =
        static_cast<double>(n) * delta /
        (static_cast<double>(s * s) * (1 - 2 * delta) * (1 - 2 * delta) *
         static_cast<double>(h));
    const double logn = std::log(static_cast<double>(n));
    table.cell(n)
        .cell(h)
        .cell(t, 0)
        .cell(lb, 2)
        .cell(t / lb, 1)
        .cell(t / lb / logn, 2)
        .cell(stats[i].success_rate, 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: T/LB grows slowly with n while (T/LB)/ln n stays\n"
      "roughly flat — the measured protocol is within a log factor of the\n"
      "information-theoretic lower bound, as Theorem 4's remark states.\n");
  return 0;
}
