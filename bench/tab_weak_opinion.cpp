// LEM28/36 — the weak-opinion guarantee: after the listening stage each
// agent's weak opinion is correct with probability ≥ 1/2 + 4√(log n / n).
//
// We measure the empirical per-agent advantage P(weak correct) − 1/2 for SF
// (after Phase 1) and for SSF (after two update cycles) across n, and print
// it next to the √(log n/n) yardstick.  The advantage must stay positive
// and shrink at roughly that rate.
#include "bench_common.hpp"

#include <cmath>

namespace {

using namespace noisypull;

// Fraction of correct weak opinions after SF's listening phases, pooled
// over repetitions.
double sf_weak_fraction(const PopulationConfig& pop, double delta,
                        std::uint64_t seed, int reps) {
  const auto noise = NoiseMatrix::uniform(2, delta);
  std::uint64_t correct = 0, total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    SourceFilter sf(pop, Holdings{pop.n}, Delta{delta},
                    C1{noisypull::bench::kC1});
    AggregateEngine engine;
    Rng rng(seed + rep);
    for (std::uint64_t t = 0; t < sf.schedule().boosting_start(); ++t) {
      engine.step(sf, noise, Holdings{pop.n}, t, rng);
    }
    for (std::uint64_t i = 0; i < pop.n; ++i) {
      correct += sf.weak_opinion(i) == pop.correct_opinion() ? 1 : 0;
    }
    total += pop.n;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

// Fraction of correct weak opinions after 3 SSF update cycles.
double ssf_weak_fraction(const PopulationConfig& pop, double delta,
                         std::uint64_t seed, int reps) {
  const auto noise = NoiseMatrix::uniform(4, delta);
  std::uint64_t correct = 0, total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{delta},
                                    C1{noisypull::bench::kC1});
    AggregateEngine engine;
    Rng rng(seed + rep);
    const std::uint64_t cycle =
        (ssf.memory_budget() + pop.n - 1) / pop.n;
    for (std::uint64_t t = 0; t < 3 * cycle; ++t) {
      engine.step(ssf, noise, Holdings{pop.n}, t, rng);
    }
    for (std::uint64_t i = 0; i < pop.n; ++i) {
      correct += ssf.weak_opinion(i) == pop.correct_opinion() ? 1 : 0;
    }
    total += pop.n;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("LEM28/LEM36 / tab_weak_opinion",
         "Lemmas 28 & 36: weak opinions are correct with probability at "
         "least 1/2 + 4 sqrt(log n / n) after the listening stage.");

  const double delta = 0.2;
  const double delta_ssf = 0.05;

  Table table({"n", "SF advantage", "SF exact (Lemma 28)", "SSF advantage",
               "sqrt(ln n / n)", "SF adv / yardstick",
               "SSF adv / yardstick"});
  for (std::uint64_t n : {500ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL,
                          16000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    const double sf_adv =
        sf_weak_fraction(pop, delta, 9000 + n, 4) - 0.5;
    const double ssf_adv =
        ssf_weak_fraction(pop, delta_ssf, 9500 + n, 4) - 0.5;
    // Closed-form prediction from the Section 5.3.1 message distributions,
    // at the messages-per-phase the protocol actually collects.
    const auto sched = make_sf_schedule(pop, Holdings{pop.n}, Delta{delta},
                                        kC1);
    const double exact_adv =
        sf_weak_opinion_exact(AgentCount{n},
                              MemoryBudget{sched.phase_rounds * pop.n},
                              Delta{delta}, SourceCount{1}, SourceCount{0}) -
        0.5;
    const double yard =
        std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
    table.cell(n)
        .cell(sf_adv, 4)
        .cell(exact_adv, 4)
        .cell(ssf_adv, 4)
        .cell(yard, 4)
        .cell(sf_adv / yard, 2)
        .cell(ssf_adv / yard, 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: both advantages positive at every n and shrinking;\n"
      "the advantage/yardstick ratio stays bounded away from 0 (the\n"
      "Omega(sqrt(log n/n)) guarantee of the lemmas).\n");
  return 0;
}
