// ABL — ablation benches for the design choices DESIGN.md calls out:
//   1. SF without the neutral listening phase (EagerSourceFilter): relayed
//      uninformed opinions swamp the source unless s = Ω(√n);
//   2. SF with alternating neutral displays (the §2.1 remark's variant):
//      conjectured to work as well as block displays;
//   3. SSF without the source-tag bit (TaglessSsf): self-stabilization
//      breaks — a wrong-consensus corruption sticks;
//   4. SF on a non-uniform channel with vs without the Theorem 8 reduction.
//
// All three sections share one experiment-scheduler queue
// (analysis/scheduler.hpp): `--threads` drains cells concurrently,
// `--ci-halfwidth`/`--max-reps` opt into adaptive early stopping, and
// `--cache-dir` reuses previously computed repetitions.  Cell seeds keep
// the legacy run_repetitions derivations (13000/13100/13200 + s,
// 14000/14100 + policy, 15000/15100), so every trajectory — and the printed
// tables — are bit-identical to the pre-scheduler bench.
#include "bench_common.hpp"

namespace {

using namespace noisypull;
using noisypull::bench::kC1;

ProtocolFactory eager_factory(const PopulationConfig& pop, SfSchedule sched) {
  return [pop, sched](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<EagerSourceFilter>(pop, sched, init);
  };
}

ProtocolFactory alternating_factory(const PopulationConfig& pop,
                                    SfSchedule sched) {
  return [pop, sched](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<AlternatingSourceFilter>(pop, sched, init);
  };
}

ProtocolFactory tagless_factory(const PopulationConfig& pop, std::uint64_t m,
                                CorruptionPolicy policy) {
  return [pop, m, policy](Rng& init) -> std::unique_ptr<PullProtocol> {
    auto t = std::make_unique<TaglessSsf>(pop, Holdings{pop.n},
                                          MemoryBudget{m});
    corrupt_population(*t, policy, pop.correct_opinion(), init);
    return t;
  };
}

// Protocol-construction digests for the factories above, mirroring
// bench_common's sf_digest/ssf_digest: protocol type plus every captured
// construction parameter.  The listening-phase variants capture a schedule
// derived from (pop, h, delta, c1), so those are what the key folds.
std::uint64_t eager_digest(const PopulationConfig& pop, Holdings h,
                           Delta delta, C1 c1 = kC1) {
  return CellKey().str("EagerSourceFilter").u64(pop.n).u64(pop.s1).u64(pop.s0)
      .u64(h.get()).f64(delta.get()).f64(c1.get()).digest();
}

std::uint64_t alternating_digest(const PopulationConfig& pop, Holdings h,
                                 Delta delta, C1 c1 = kC1) {
  return CellKey().str("AlternatingSourceFilter").u64(pop.n).u64(pop.s1)
      .u64(pop.s0).u64(h.get()).f64(delta.get()).f64(c1.get()).digest();
}

std::uint64_t tagless_digest(const PopulationConfig& pop, std::uint64_t m,
                             CorruptionPolicy policy) {
  return CellKey().str("TaglessSsf").u64(pop.n).u64(pop.s1).u64(pop.s0)
      .u64(pop.n).u64(m).str(to_string(policy)).digest();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("ABL / tab_ablations",
         "Design-choice ablations: neutral listening phase, alternating "
         "displays, the SSF source tag, and the noise reduction.");

  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const std::uint64_t reps = 12;

  // All sections' cells go into one flat queue; each section remembers the
  // index range its table reads back.
  std::vector<ExperimentCell> cells;

  // (1)+(2): listening-phase variants across bias values.  Three cells per
  // bias in protocol order SF, alternating, eager.
  const std::uint64_t biases[] = {1, 4, 64};
  const std::uint64_t listening_n = 2000;
  for (const std::uint64_t s : biases) {
    const PopulationConfig pop{.n = listening_n, .s1 = s, .s0 = 0};
    const std::uint64_t n = pop.n;
    const auto sched = make_sf_schedule(pop, Holdings{n}, Delta{delta}, kC1);
    struct Variant {
      ProtocolFactory factory;
      std::uint64_t seed;
      std::uint64_t digest;
    };
    const Variant variants[] = {
        {sf_factory(pop, Holdings{n}, Delta{delta}), 13000 + s,
         sf_digest(pop, Holdings{n}, Delta{delta})},
        {alternating_factory(pop, sched), 13100 + s,
         alternating_digest(pop, Holdings{n}, Delta{delta})},
        {eager_factory(pop, sched), 13200 + s,
         eager_digest(pop, Holdings{n}, Delta{delta})},
    };
    for (const Variant& v : variants) {
      cells.push_back(ExperimentCell{
          .label = "listening s=" + std::to_string(s) + " seed=" +
                   std::to_string(v.seed),
          .make_protocol = v.factory,
          .noise = noise,
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = n},
          .seed = v.seed,
          .protocol_digest = v.digest});
    }
  }
  const std::size_t tag_base = cells.size();

  // (3): the SSF source tag under wrong-consensus corruption.  Two cells per
  // policy in protocol order SSF, tagless.
  const double dssf = 0.05;
  const std::uint64_t tag_n = 1000;
  const PopulationConfig tag_pop{.n = tag_n, .s1 = 2, .s0 = 0};
  const SelfStabilizingSourceFilter tag_ref(tag_pop, Holdings{tag_n},
                                            Delta{dssf}, kC1);
  for (const auto policy :
       {CorruptionPolicy::None, CorruptionPolicy::WrongConsensus}) {
    cells.push_back(ExperimentCell{
        .label = std::string("tag ssf ") + std::string(to_string(policy)),
        .make_protocol = ssf_factory(tag_pop, Holdings{tag_n}, Delta{dssf},
                                     policy),
        .noise = NoiseMatrix::uniform(4, dssf),
        .correct = tag_pop.correct_opinion(),
        .cfg = RunConfig{.h = tag_n,
                         .max_rounds = tag_ref.convergence_deadline()},
        .seed = 14000 + static_cast<std::uint64_t>(policy),
        .protocol_digest =
            ssf_digest(tag_pop, Holdings{tag_n}, Delta{dssf}, policy)});
    cells.push_back(ExperimentCell{
        .label = std::string("tag tagless ") + std::string(to_string(policy)),
        .make_protocol = tagless_factory(tag_pop, tag_ref.memory_budget(),
                                         policy),
        .noise = NoiseMatrix::uniform(2, dssf),
        .correct = tag_pop.correct_opinion(),
        .cfg = RunConfig{.h = tag_n,
                         .max_rounds = tag_ref.convergence_deadline()},
        .seed = 14100 + static_cast<std::uint64_t>(policy),
        .protocol_digest =
            tagless_digest(tag_pop, tag_ref.memory_budget(), policy)});
  }
  const std::size_t reduction_base = cells.size();

  // (4): Theorem 8 reduction on vs off for a skewed channel.  The "with"
  // cell composes the reduction's artificial noise behind the raw channel —
  // ExperimentCell::artificial_noise, folded into the cache key by the
  // scheduler.
  const NoiseMatrix raw(Matrix{0.97, 0.03, 0.25, 0.75});
  const auto red = reduce_to_uniform(raw);
  const PopulationConfig red_pop{.n = 2000, .s1 = 1, .s0 = 0};
  cells.push_back(ExperimentCell{
      .label = "reduction artificial",
      .make_protocol =
          sf_factory(red_pop, Holdings{red_pop.n}, Delta{red.delta_prime}),
      .noise = raw,
      .correct = red_pop.correct_opinion(),
      .cfg = RunConfig{.h = red_pop.n},
      .seed = 15000,
      .protocol_digest =
          sf_digest(red_pop, Holdings{red_pop.n}, Delta{red.delta_prime}),
      .use_aggregate_engine = true,
      .artificial_noise = red.artificial});
  // Without the reduction, tune SF to the tightest upper bound and run on
  // the raw (asymmetric) channel directly.
  cells.push_back(ExperimentCell{
      .label = "reduction raw",
      .make_protocol = sf_factory(red_pop, Holdings{red_pop.n},
                                  Delta{raw.tightest_upper_bound()}),
      .noise = raw,
      .correct = red_pop.correct_opinion(),
      .cfg = RunConfig{.h = red_pop.n},
      .seed = 15100,
      .protocol_digest = sf_digest(red_pop, Holdings{red_pop.n},
                                   Delta{raw.tightest_upper_bound()})});

  const auto stats = run_experiment(cells, scheduler_options(args, reps));
  warn_if_degraded(stats);

  {
    Table table({"n", "bias s", "SF", "alternating", "eager (no listening)"});
    for (std::size_t si = 0; si < sizeof(biases) / sizeof(biases[0]); ++si) {
      const std::size_t base = si * 3;
      table.cell(listening_n)
          .cell(biases[si])
          .cell(stats[base].success_rate, 2)
          .cell(stats[base + 1].success_rate, 2)
          .cell(stats[base + 2].success_rate, 2)
          .end_row();
    }
    args.emit(table, "_listening");
    std::printf(
        "expected: SF and alternating ~1 at every bias; eager fails at\n"
        "small bias (the relayed-opinion noise floor) and recovers only\n"
        "once s approaches sqrt(n).\n\n");
  }

  {
    Table table({"n", "protocol", "corruption", "success"});
    std::size_t idx = tag_base;
    for (const auto policy :
         {CorruptionPolicy::None, CorruptionPolicy::WrongConsensus}) {
      table.cell(tag_n).cell("SSF (2-bit)").cell(to_string(policy)).cell(
          stats[idx++].success_rate, 2);
      table.end_row();
      table.cell(tag_n).cell("tagless (1-bit)").cell(to_string(policy)).cell(
          stats[idx++].success_rate, 2);
      table.end_row();
    }
    args.emit(table, "_tag");
    std::printf(
        "expected: SSF ~1 under both; the tagless variant cannot recover\n"
        "from the wrong-consensus corruption (majority locks it in).\n\n");
  }

  {
    Table table({"channel handling", "tuned delta", "success"});
    table.cell("Theorem 8 reduction (artificial noise)")
        .cell(red.delta_prime, 3)
        .cell(stats[reduction_base].success_rate, 2)
        .end_row();
    table.cell("raw asymmetric channel")
        .cell(raw.tightest_upper_bound(), 3)
        .cell(stats[reduction_base + 1].success_rate, 2)
        .end_row();
    args.emit(table, "_reduction");
    std::printf(
        "expected: the reduction path succeeds ~1.  The raw path can fail:\n"
        "an asymmetric channel biases the neutral phases, which is exactly\n"
        "why Section 4 symmetrizes the noise first.\n");
  }
  return 0;
}
