// ABL — ablation benches for the design choices DESIGN.md calls out:
//   1. SF without the neutral listening phase (EagerSourceFilter): relayed
//      uninformed opinions swamp the source unless s = Ω(√n);
//   2. SF with alternating neutral displays (the §2.1 remark's variant):
//      conjectured to work as well as block displays;
//   3. SSF without the source-tag bit (TaglessSsf): self-stabilization
//      breaks — a wrong-consensus corruption sticks;
//   4. SF on a non-uniform channel with vs without the Theorem 8 reduction.
#include "bench_common.hpp"

namespace {

using namespace noisypull;
using noisypull::bench::kC1;

ProtocolFactory eager_factory(const PopulationConfig& pop, SfSchedule sched) {
  return [pop, sched](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<EagerSourceFilter>(pop, sched, init);
  };
}

ProtocolFactory alternating_factory(const PopulationConfig& pop,
                                    SfSchedule sched) {
  return [pop, sched](Rng& init) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<AlternatingSourceFilter>(pop, sched, init);
  };
}

ProtocolFactory tagless_factory(const PopulationConfig& pop, std::uint64_t m,
                                CorruptionPolicy policy) {
  return [pop, m, policy](Rng& init) -> std::unique_ptr<PullProtocol> {
    auto t = std::make_unique<TaglessSsf>(pop, Holdings{pop.n},
                                          MemoryBudget{m});
    corrupt_population(*t, policy, pop.correct_opinion(), init);
    return t;
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("ABL / tab_ablations",
         "Design-choice ablations: neutral listening phase, alternating "
         "displays, the SSF source tag, and the noise reduction.");

  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const std::uint64_t reps = 12;

  // (1)+(2): listening-phase variants across bias values.
  {
    Table table({"n", "bias s", "SF", "alternating", "eager (no listening)"});
    for (std::uint64_t n : {2000ULL}) {
      for (std::uint64_t s : {1ULL, 4ULL, 64ULL}) {
        const PopulationConfig pop{.n = n, .s1 = s, .s0 = 0};
        const auto sched = make_sf_schedule(pop, Holdings{n}, Delta{delta},
                                            kC1);
        auto rate = [&](const ProtocolFactory& f, std::uint64_t seed) {
          return success_rate(run_repetitions(
              f, noise, pop.correct_opinion(), RunConfig{.h = n},
              RepeatOptions{.repetitions = reps, .seed = seed}));
        };
        table.cell(n)
            .cell(s)
            .cell(rate(sf_factory(pop, Holdings{n}, Delta{delta}), 13000 + s),
                  2)
            .cell(rate(alternating_factory(pop, sched), 13100 + s), 2)
            .cell(rate(eager_factory(pop, sched), 13200 + s), 2)
            .end_row();
      }
    }
    args.emit(table, "_listening");
    std::printf(
        "expected: SF and alternating ~1 at every bias; eager fails at\n"
        "small bias (the relayed-opinion noise floor) and recovers only\n"
        "once s approaches sqrt(n).\n\n");
  }

  // (3): the SSF source tag under wrong-consensus corruption.
  {
    const double dssf = 0.05;
    Table table({"n", "protocol", "corruption", "success"});
    for (std::uint64_t n : {1000ULL}) {
      const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
      const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{dssf}, kC1);
      for (const auto policy :
           {CorruptionPolicy::None, CorruptionPolicy::WrongConsensus}) {
        const auto ssf_rate = success_rate(run_repetitions(
            ssf_factory(pop, Holdings{n}, Delta{dssf},
                policy), NoiseMatrix::uniform(4, dssf),
            pop.correct_opinion(),
            RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
            RepeatOptions{.repetitions = reps,
                          .seed = 14000 + static_cast<std::uint64_t>(policy)}));
        const auto tagless_rate = success_rate(run_repetitions(
            tagless_factory(pop, ref.memory_budget(), policy),
            NoiseMatrix::uniform(2, dssf), pop.correct_opinion(),
            RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
            RepeatOptions{.repetitions = reps,
                          .seed = 14100 + static_cast<std::uint64_t>(policy)}));
        table.cell(n).cell("SSF (2-bit)").cell(to_string(policy)).cell(
            ssf_rate, 2);
        table.end_row();
        table.cell(n).cell("tagless (1-bit)").cell(to_string(policy)).cell(
            tagless_rate, 2);
        table.end_row();
      }
    }
    args.emit(table, "_tag");
    std::printf(
        "expected: SSF ~1 under both; the tagless variant cannot recover\n"
        "from the wrong-consensus corruption (majority locks it in).\n\n");
  }

  // (4): Theorem 8 reduction on vs off for a skewed channel.
  {
    const NoiseMatrix raw(Matrix{0.97, 0.03, 0.25, 0.75});
    const auto red = reduce_to_uniform(raw);
    const PopulationConfig pop{.n = 2000, .s1 = 1, .s0 = 0};
    Table table({"channel handling", "tuned delta", "success"});

    const auto with = run_repetitions(
        sf_factory(pop, Holdings{pop.n},
            Delta{red.delta_prime}), raw, pop.correct_opinion(),
        RunConfig{.h = pop.n},
        RepeatOptions{.repetitions = reps,
                      .seed = 15000,
                      .artificial_noise = red.artificial});
    // Without the reduction, tune SF to the tightest upper bound and run on
    // the raw (asymmetric) channel directly.
    const auto without = run_repetitions(
        sf_factory(pop, Holdings{pop.n},
                   Delta{raw.tightest_upper_bound()}), raw,
        pop.correct_opinion(), RunConfig{.h = pop.n},
        RepeatOptions{.repetitions = reps, .seed = 15100});
    table.cell("Theorem 8 reduction (artificial noise)")
        .cell(red.delta_prime, 3)
        .cell(success_rate(with), 2)
        .end_row();
    table.cell("raw asymmetric channel")
        .cell(raw.tightest_upper_bound(), 3)
        .cell(success_rate(without), 2)
        .end_row();
    args.emit(table, "_reduction");
    std::printf(
        "expected: the reduction path succeeds ~1.  The raw path can fail:\n"
        "an asymmetric channel biases the neutral phases, which is exactly\n"
        "why Section 4 symmetrizes the noise first.\n");
  }
  return 0;
}
