// ASYNC — scheduler robustness: the self-stabilizing setting is motivated by
// agents lacking a common clock (§1.3).  The SequentialEngine activates
// agents one at a time (random or adversarially fixed order) with live
// displays, the population-protocol-style semantics.  SSF must converge
// under every schedule; SF — which leans on synchronized phases — is run
// for contrast under the same schedules from a clean simultaneous start,
// where sequential activation within a round is harmless.
//
// The synchronous reference row runs through the experiment scheduler
// (analysis/scheduler.hpp): `--threads`/`--ci-halfwidth`/`--cache-dir`
// apply, and the legacy seeds (18000 SSF, 18100 SF) keep its trajectories
// bit-identical to the pre-scheduler bench.  The sequential rows stay on
// hand-rolled loops: SequentialEngine's live-display semantics are not a
// scheduler engine kind, and wrapping them would add a cache-key engine
// dimension for three rows that run in seconds.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

const char* order_name(SequentialEngine::Order order) {
  switch (order) {
    case SequentialEngine::Order::Random:
      return "sequential-random";
    case SequentialEngine::Order::FixedAscending:
      return "sequential-ascending";
    case SequentialEngine::Order::FixedDescending:
      return "sequential-descending";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("ASYNC / tab_async_schedules",
         "Scheduler robustness: SSF (from wrong-consensus corruption) and "
         "SF (clean start) under synchronous vs sequential activation.");

  const std::uint64_t n = 1500;
  const double delta_ssf = 0.05;
  const double delta_sf = 0.15;
  const std::uint64_t reps = 8;
  const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};

  const SequentialEngine::Order orders[] = {
      SequentialEngine::Order::Random,
      SequentialEngine::Order::FixedAscending,
      SequentialEngine::Order::FixedDescending};

  Table table({"schedule", "SSF success", "SSF first-correct", "SF success"});

  // Synchronous reference row: two cells on the shared scheduler queue.
  {
    const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                          kC1);
    std::vector<ExperimentCell> cells;
    cells.push_back(ExperimentCell{
        .label = "sync ssf",
        .make_protocol = ssf_factory(pop, Holdings{n}, Delta{delta_ssf},
                                     CorruptionPolicy::WrongConsensus),
        .noise = NoiseMatrix::uniform(4, delta_ssf),
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
        .seed = 18000,
        .protocol_digest = ssf_digest(pop, Holdings{n}, Delta{delta_ssf},
                                      CorruptionPolicy::WrongConsensus)});
    cells.push_back(ExperimentCell{
        .label = "sync sf",
        .make_protocol = sf_factory(pop, Holdings{n}, Delta{delta_sf}),
        .noise = NoiseMatrix::uniform(2, delta_sf),
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n},
        .seed = 18100,
        .protocol_digest = sf_digest(pop, Holdings{n}, Delta{delta_sf})});
    const auto stats = run_experiment(cells, scheduler_options(args, reps));
    warn_if_degraded(stats);
    table.cell("synchronous")
        .cell(stats[0].success_rate, 2)
        .cell(stats[0].mean_convergence_round, 1)
        .cell(stats[1].success_rate, 2)
        .end_row();
  }

  for (const auto order : orders) {
    const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                          kC1);
    double ssf_ok = 0.0, ssf_first = 0.0, sf_ok = 0.0;
    std::uint64_t converged = 0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      {
        SelfStabilizingSourceFilter ssf(pop, Holdings{n}, Delta{delta_ssf},
                                        kC1);
        Rng init(18200 + rep);
        corrupt_population(ssf, CorruptionPolicy::WrongConsensus,
                           pop.correct_opinion(), init);
        SequentialEngine engine(order);
        Rng rng(18300 + rep);
        const auto r = run(ssf, engine, NoiseMatrix::uniform(4, delta_ssf),
                           pop.correct_opinion(),
                           RunConfig{.h = n,
                                     .max_rounds = ref.convergence_deadline()},
                           rng);
        ssf_ok += r.all_correct_at_end ? 1 : 0;
        if (r.first_all_correct != kNever) {
          ssf_first += static_cast<double>(r.first_all_correct);
          ++converged;
        }
      }
      {
        SourceFilter sf(pop, Holdings{n}, Delta{delta_sf}, kC1);
        SequentialEngine engine(order);
        Rng rng(18400 + rep);
        const auto r = run(sf, engine, NoiseMatrix::uniform(2, delta_sf),
                           pop.correct_opinion(), RunConfig{.h = n}, rng);
        sf_ok += r.all_correct_at_end ? 1 : 0;
      }
    }
    table.cell(order_name(order))
        .cell(ssf_ok / static_cast<double>(reps), 2)
        .cell(converged
                  ? std::optional<double>(ssf_first /
                                          static_cast<double>(converged))
                  : std::nullopt,
              1)
        .cell(sf_ok / static_cast<double>(reps), 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: SSF succeeds under every schedule (its design never\n"
      "references a global clock); SF also tolerates within-round sequential\n"
      "activation given its simultaneous wake-up, as the listening phases\n"
      "only read population-level histograms.\n");
  return 0;
}
