// ASYNC — scheduler robustness: the self-stabilizing setting is motivated by
// agents lacking a common clock (§1.3).  The SequentialEngine activates
// agents one at a time (random or adversarially fixed order) with live
// displays, the population-protocol-style semantics.  SSF must converge
// under every schedule; SF — which leans on synchronized phases — is run
// for contrast under the same schedules from a clean simultaneous start,
// where sequential activation within a round is harmless.
#include "bench_common.hpp"

namespace {

using namespace noisypull;

const char* order_name(SequentialEngine::Order order) {
  switch (order) {
    case SequentialEngine::Order::Random:
      return "sequential-random";
    case SequentialEngine::Order::FixedAscending:
      return "sequential-ascending";
    case SequentialEngine::Order::FixedDescending:
      return "sequential-descending";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("ASYNC / tab_async_schedules",
         "Scheduler robustness: SSF (from wrong-consensus corruption) and "
         "SF (clean start) under synchronous vs sequential activation.");

  const std::uint64_t n = 1500;
  const double delta_ssf = 0.05;
  const double delta_sf = 0.15;
  const std::uint64_t reps = 8;
  const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};

  const SequentialEngine::Order orders[] = {
      SequentialEngine::Order::Random,
      SequentialEngine::Order::FixedAscending,
      SequentialEngine::Order::FixedDescending};

  Table table({"schedule", "SSF success", "SSF first-correct", "SF success"});

  // Synchronous reference row.
  {
    const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                          kC1);
    const auto ssf_results = run_repetitions(
        ssf_factory(pop, Holdings{n}, Delta{delta_ssf},
                    CorruptionPolicy::WrongConsensus),
        NoiseMatrix::uniform(4, delta_ssf), pop.correct_opinion(),
        RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
        RepeatOptions{.repetitions = reps, .seed = 18000});
    const auto sf_results = run_repetitions(
        sf_factory(pop, Holdings{n}, Delta{delta_sf}), NoiseMatrix::uniform(2,
            delta_sf),
        pop.correct_opinion(), RunConfig{.h = n},
        RepeatOptions{.repetitions = reps, .seed = 18100});
    table.cell("synchronous")
        .cell(success_rate(ssf_results), 2)
        .cell(mean_convergence_round(ssf_results), 1)
        .cell(success_rate(sf_results), 2)
        .end_row();
  }

  for (const auto order : orders) {
    const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                          kC1);
    double ssf_ok = 0.0, ssf_first = 0.0, sf_ok = 0.0;
    std::uint64_t converged = 0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      {
        SelfStabilizingSourceFilter ssf(pop, Holdings{n}, Delta{delta_ssf},
                                        kC1);
        Rng init(18200 + rep);
        corrupt_population(ssf, CorruptionPolicy::WrongConsensus,
                           pop.correct_opinion(), init);
        SequentialEngine engine(order);
        Rng rng(18300 + rep);
        const auto r = run(ssf, engine, NoiseMatrix::uniform(4, delta_ssf),
                           pop.correct_opinion(),
                           RunConfig{.h = n,
                                     .max_rounds = ref.convergence_deadline()},
                           rng);
        ssf_ok += r.all_correct_at_end ? 1 : 0;
        if (r.first_all_correct != kNever) {
          ssf_first += static_cast<double>(r.first_all_correct);
          ++converged;
        }
      }
      {
        SourceFilter sf(pop, Holdings{n}, Delta{delta_sf}, kC1);
        SequentialEngine engine(order);
        Rng rng(18400 + rep);
        const auto r = run(sf, engine, NoiseMatrix::uniform(2, delta_sf),
                           pop.correct_opinion(), RunConfig{.h = n}, rng);
        sf_ok += r.all_correct_at_end ? 1 : 0;
      }
    }
    table.cell(order_name(order))
        .cell(ssf_ok / static_cast<double>(reps), 2)
        .cell(converged ? ssf_first / static_cast<double>(converged) : -1.0,
              1)
        .cell(sf_ok / static_cast<double>(reps), 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: SSF succeeds under every schedule (its design never\n"
      "references a global clock); SF also tolerates within-round sequential\n"
      "activation given its simultaneous wake-up, as the listening phases\n"
      "only read population-level histograms.\n");
  return 0;
}
