// CONF — conflicting sources / plurality consensus (§1.3–1.4): with s1
// sources for 1 and s0 for 0, the population must converge to the strict
// plurality, even at bias 1, and including the outvoted sources themselves.
//
// Sweeps (s1, s0) pairs at several population sizes, for SF and for SSF.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("CONF / tab_conflicting_sources",
         "Conflicting sources: convergence to the plurality opinion among "
         "sources, for bias down to s = 1 (zealot consensus).");

  const double delta = 0.15;
  const double delta_ssf = 0.05;
  const std::uint64_t reps = 12;

  struct Pair {
    std::uint64_t s1, s0;
  };
  const Pair pairs[] = {{1, 0}, {2, 1}, {6, 5}, {20, 19}, {30, 10}, {0, 3}};

  Table table({"n", "s1", "s0", "bias", "correct op", "SF success",
               "SSF success"});
  for (std::uint64_t n : {1000ULL, 4000ULL}) {
    for (const auto& pr : pairs) {
      const PopulationConfig pop{.n = n, .s1 = pr.s1, .s0 = pr.s0};
      const auto sf_results = run_repetitions(
          sf_factory(pop, Holdings{n}, Delta{delta}), NoiseMatrix::uniform(2,
              delta),
          pop.correct_opinion(), RunConfig{.h = n},
          RepeatOptions{.repetitions = reps,
                        .seed = 10000 + n + pr.s1 * 7 + pr.s0});
      const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                            kC1);
      const auto ssf_results = run_repetitions(
          ssf_factory(pop, Holdings{n}, Delta{delta_ssf},
                      CorruptionPolicy::RandomState),
          NoiseMatrix::uniform(4, delta_ssf), pop.correct_opinion(),
          RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
          RepeatOptions{.repetitions = reps,
                        .seed = 11000 + n + pr.s1 * 7 + pr.s0});
      table.cell(n)
          .cell(pr.s1)
          .cell(pr.s0)
          .cell(pop.bias())
          .cell(static_cast<std::uint64_t>(pop.correct_opinion()))
          .cell(success_rate(sf_results), 2)
          .cell(success_rate(ssf_results), 2)
          .end_row();
    }
  }
  args.emit(table);
  std::printf(
      "expected shape: success ~1 across the board — the plurality wins\n"
      "regardless of how small the margin is or which opinion is correct\n"
      "(SSF runs from randomized adversarial initial states).\n");
  return 0;
}
