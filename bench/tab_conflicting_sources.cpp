// CONF — conflicting sources / plurality consensus (§1.3–1.4): with s1
// sources for 1 and s0 for 0, the population must converge to the strict
// plurality, even at bias 1, and including the outvoted sources themselves.
//
// Sweeps (s1, s0) pairs at several population sizes, for SF and for SSF.
//
// All cells go through one experiment-scheduler queue
// (analysis/scheduler.hpp): `--threads` drains cells concurrently,
// `--ci-halfwidth`/`--max-reps` opt into adaptive early stopping, and
// `--cache-dir` reuses previously computed repetitions.  Cell seeds keep the
// legacy run_repetitions derivation (SF 10000 + n + s1·7 + s0, SSF
// 11000 + n + s1·7 + s0), so trajectories are bit-identical to the
// pre-scheduler bench.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("CONF / tab_conflicting_sources",
         "Conflicting sources: convergence to the plurality opinion among "
         "sources, for bias down to s = 1 (zealot consensus).");

  const double delta = 0.15;
  const double delta_ssf = 0.05;
  const std::uint64_t reps = 12;

  struct Pair {
    std::uint64_t s1, s0;
  };
  const Pair pairs[] = {{1, 0}, {2, 1}, {6, 5}, {20, 19}, {30, 10}, {0, 3}};

  // Cells interleave SF/SSF per grid row: row r reads stats[2r] / stats[2r+1].
  struct Row {
    PopulationConfig pop;
  };
  std::vector<Row> grid;
  std::vector<ExperimentCell> cells;
  for (std::uint64_t n : {1000ULL, 4000ULL}) {
    for (const auto& pr : pairs) {
      const PopulationConfig pop{.n = n, .s1 = pr.s1, .s0 = pr.s0};
      grid.push_back({pop});
      const std::string suffix = " n=" + std::to_string(n) +
                                 " s1=" + std::to_string(pr.s1) +
                                 " s0=" + std::to_string(pr.s0);
      cells.push_back(ExperimentCell{
          .label = "SF" + suffix,
          .make_protocol = sf_factory(pop, Holdings{n}, Delta{delta}),
          .noise = NoiseMatrix::uniform(2, delta),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = n},
          .seed = 10000 + n + pr.s1 * 7 + pr.s0,
          .protocol_digest = sf_digest(pop, Holdings{n}, Delta{delta})});
      const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta_ssf},
                                            kC1);
      cells.push_back(ExperimentCell{
          .label = "SSF" + suffix,
          .make_protocol = ssf_factory(pop, Holdings{n}, Delta{delta_ssf},
                                       CorruptionPolicy::RandomState),
          .noise = NoiseMatrix::uniform(4, delta_ssf),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
          .seed = 11000 + n + pr.s1 * 7 + pr.s0,
          .protocol_digest = ssf_digest(pop, Holdings{n}, Delta{delta_ssf},
                                        CorruptionPolicy::RandomState)});
    }
  }
  const auto stats = run_experiment(cells, scheduler_options(args, reps));
  warn_if_degraded(stats);

  Table table({"n", "s1", "s0", "bias", "correct op", "SF success",
               "SSF success"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PopulationConfig& pop = grid[i].pop;
    table.cell(pop.n)
        .cell(pop.s1)
        .cell(pop.s0)
        .cell(pop.bias())
        .cell(static_cast<std::uint64_t>(pop.correct_opinion()))
        .cell(stats[2 * i].success_rate, 2)
        .cell(stats[2 * i + 1].success_rate, 2)
        .end_row();
  }
  args.emit(table);
  std::printf(
      "expected shape: success ~1 across the board — the plurality wins\n"
      "regardless of how small the margin is or which opinion is correct\n"
      "(SSF runs from randomized adversarial initial states).\n");
  return 0;
}
