// THM5 — the self-stabilizing theorem: SSF converges w.h.p. within
// O(δ·n·log n/(h(1−4δ)²) + n/h) rounds from *any* adversarial initial
// configuration, and remains correct for polynomially many rounds.
//
// Two tables: (a) recovery across every corruption policy at fixed size,
// with a stability window of 3 deadlines; (b) scaling of the convergence
// round with n at h = n under the hardest (wrong-consensus) corruption.
//
// Both tables' cells share one experiment-scheduler queue
// (analysis/scheduler.hpp) with the shared `--threads` / `--ci-halfwidth` /
// `--cache-dir` flags.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM5 / tab_thm5_selfstab",
         "Theorem 5: SSF converges from adversarial states in "
         "O(delta n log n/(h(1-4delta)^2) + n/h) rounds and stays correct.");

  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);

  const std::vector<std::uint64_t> scaling_n = {500, 1000, 2000, 4000, 8000};

  std::vector<ExperimentCell> cells;
  // (a) every corruption policy, n = 2000, h = n.
  const PopulationConfig pop_a{.n = 2000, .s1 = 2, .s0 = 0};
  const SelfStabilizingSourceFilter ref_a(pop_a, Holdings{pop_a.n},
                                          Delta{delta}, kC1);
  for (const auto policy : kAllCorruptionPolicies) {
    cells.push_back(ExperimentCell{
        .label = std::string("policy ") + to_string(policy),
        .make_protocol = ssf_factory(pop_a, Holdings{pop_a.n}, Delta{delta},
                                     policy),
        .noise = noise,
        .correct = pop_a.correct_opinion(),
        .cfg = RunConfig{.h = pop_a.n,
                         .max_rounds = ref_a.convergence_deadline(),
                         .stability_window = 3 * ref_a.convergence_deadline()},
        .seed = 8000 + static_cast<std::uint64_t>(policy),
        .protocol_digest = ssf_digest(pop_a, Holdings{pop_a.n}, Delta{delta},
                                      policy)});
  }
  // (b) scaling in n under wrong-consensus corruption.
  for (std::uint64_t n : scaling_n) {
    const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
    const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta}, kC1);
    cells.push_back(ExperimentCell{
        .label = "n=" + std::to_string(n),
        .make_protocol =
            ssf_factory(pop, Holdings{n}, Delta{delta},
                        CorruptionPolicy::WrongConsensus),
        .noise = noise,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
        .seed = 8100 + n,
        .protocol_digest =
            ssf_digest(pop, Holdings{n}, Delta{delta},
                       CorruptionPolicy::WrongConsensus)});
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 6));

  {
    Table table({"corruption", "success", "stable", "mean first-correct",
                 "deadline"});
    std::size_t i = 0;
    for (const auto policy : kAllCorruptionPolicies) {
      const auto& st = stats[i++];
      table.cell(to_string(policy))
          .cell(st.success_rate, 2)
          .cell(st.stable_success_rate, 2)
          .cell(st.mean_convergence_round, 1)
          .cell(ref_a.convergence_deadline())
          .end_row();
    }
    args.emit(table, "_policies");
  }

  {
    Table table({"n", "success", "mean first-correct", "deadline",
                 "first-correct/ln n"});
    const std::size_t base = std::size(kAllCorruptionPolicies);
    for (std::size_t i = 0; i < scaling_n.size(); ++i) {
      const std::uint64_t n = scaling_n[i];
      const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
      const SelfStabilizingSourceFilter ref(pop, Holdings{n}, Delta{delta},
                                            kC1);
      const auto& st = stats[base + i];
      const std::optional<double> fc = st.mean_convergence_round;
      const std::optional<double> fc_over_logn =
          fc ? std::optional<double>(*fc / std::log(static_cast<double>(n)))
             : std::nullopt;
      table.cell(n)
          .cell(st.success_rate, 2)
          .cell(fc, 1)
          .cell(ref.convergence_deadline())
          .cell(fc_over_logn, 2)
          .end_row();
    }
    args.emit(table, "_scaling");
  }
  std::printf(
      "expected shape: success and stability ~1 for every corruption\n"
      "policy; at h = n the recovery round grows only logarithmically\n"
      "(the Theorem 5 bound divided by h = n).\n");
  return 0;
}
