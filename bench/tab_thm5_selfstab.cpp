// THM5 — the self-stabilizing theorem: SSF converges w.h.p. within
// O(δ·n·log n/(h(1−4δ)²) + n/h) rounds from *any* adversarial initial
// configuration, and remains correct for polynomially many rounds.
//
// Two tables: (a) recovery across every corruption policy at fixed size,
// with a stability window of 3 deadlines; (b) scaling of the convergence
// round with n at h = n under the hardest (wrong-consensus) corruption.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM5 / tab_thm5_selfstab",
         "Theorem 5: SSF converges from adversarial states in "
         "O(delta n log n/(h(1-4delta)^2) + n/h) rounds and stays correct.");

  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);

  // (a) every corruption policy, n = 2000, h = n.
  {
    const PopulationConfig pop{.n = 2000, .s1 = 2, .s0 = 0};
    const SelfStabilizingSourceFilter ref(pop, pop.n, delta, kC1);
    Table table({"corruption", "success", "stable", "mean first-correct",
                 "deadline"});
    for (const auto policy : kAllCorruptionPolicies) {
      const auto results = run_repetitions(
          ssf_factory(pop, pop.n, delta, policy), noise,
          pop.correct_opinion(),
          RunConfig{.h = pop.n,
                    .max_rounds = ref.convergence_deadline(),
                    .stability_window = 3 * ref.convergence_deadline()},
          RepeatOptions{.repetitions = 6,
                        .seed = 8000 + static_cast<std::uint64_t>(policy)});
      table.cell(to_string(policy))
          .cell(success_rate(results), 2)
          .cell(success_rate(results, /*require_stability=*/true), 2)
          .cell(mean_convergence_round(results), 1)
          .cell(ref.convergence_deadline())
          .end_row();
    }
    args.emit(table, "_policies");
  }

  // (b) scaling in n under wrong-consensus corruption.
  {
    Table table({"n", "success", "mean first-correct", "deadline",
                 "first-correct/ln n"});
    for (std::uint64_t n : {500ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL}) {
      const PopulationConfig pop{.n = n, .s1 = 2, .s0 = 0};
      const SelfStabilizingSourceFilter ref(pop, n, delta, kC1);
      const auto results = run_repetitions(
          ssf_factory(pop, n, delta, CorruptionPolicy::WrongConsensus),
          noise, pop.correct_opinion(),
          RunConfig{.h = n, .max_rounds = ref.convergence_deadline()},
          RepeatOptions{.repetitions = 6, .seed = 8100 + n});
      const std::optional<double> fc = mean_convergence_round(results);
      const std::optional<double> fc_over_logn =
          fc ? std::optional<double>(*fc / std::log(static_cast<double>(n)))
             : std::nullopt;
      table.cell(n)
          .cell(success_rate(results), 2)
          .cell(fc, 1)
          .cell(ref.convergence_deadline())
          .cell(fc_over_logn, 2)
          .end_row();
    }
    args.emit(table, "_scaling");
  }
  std::printf(
      "expected shape: success and stability ~1 for every corruption\n"
      "policy; at h = n the recovery round grows only logarithmically\n"
      "(the Theorem 5 bound divided by h = n).\n");
  return 0;
}
