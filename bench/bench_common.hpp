// Shared conventions of the experiment binaries.
//
// Every tab_* binary regenerates one experiment from DESIGN.md's
// per-experiment index: it prints a header naming the paper artifact, runs
// the sweep, prints an aligned table, and honors `--csv <path>` via
// BenchArgs.  Experiment sizes are chosen so the full suite runs in minutes
// on one core; the scaling *shapes* — not absolute constants — carry the
// paper's claims.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "noisypull/noisypull.hpp"

namespace noisypull::bench {

inline void header(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

// Default calibrated schedule constant (see DESIGN.md, substitutions).
inline constexpr C1 kC1 = kDefaultC1;

inline ProtocolFactory sf_factory(const PopulationConfig& pop, Holdings h,
                                  Delta delta, C1 c1 = kC1) {
  return [pop, h, delta, c1](Rng&) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<SourceFilter>(pop, h, delta, c1);
  };
}

inline ProtocolFactory ssf_factory(const PopulationConfig& pop,
                                   Holdings h, Delta delta,
                                   CorruptionPolicy policy, C1 c1 = kC1) {
  return [pop, h, delta, policy,
      c1](Rng& init) -> std::unique_ptr<PullProtocol> {
    auto ssf =
        std::make_unique<SelfStabilizingSourceFilter>(pop, h, delta, c1);
    corrupt_population(*ssf, policy, pop.correct_opinion(), init);
    return ssf;
  };
}

// Cache-key digests over everything the factories above capture (protocol
// type + every construction parameter) — the caller-supplied half of the
// content-addressed result cache (ExperimentCell::protocol_digest).
inline std::uint64_t sf_digest(const PopulationConfig& pop, Holdings h,
                               Delta delta, C1 c1 = kC1) {
  return CellKey()
      .str("SourceFilter")
      .u64(pop.n)
      .u64(pop.s1)
      .u64(pop.s0)
      .u64(h.get())
      .f64(delta.get())
      .f64(c1.get())
      .digest();
}

inline std::uint64_t ssf_digest(const PopulationConfig& pop, Holdings h,
                                Delta delta, CorruptionPolicy policy,
                                C1 c1 = kC1) {
  return CellKey()
      .str("SelfStabilizingSourceFilter")
      .u64(pop.n)
      .u64(pop.s1)
      .u64(pop.s0)
      .u64(h.get())
      .f64(delta.get())
      .str(to_string(policy))
      .f64(c1.get())
      .digest();
}

// Folds the shared scheduler flags (BenchArgs) into SchedulerOptions.
// `default_reps` is the bench's built-in per-cell repetition count; the
// default StopRule reproduces the pre-scheduler behavior exactly (fixed
// repetitions, no early stopping) until the user opts in via
// --ci-halfwidth / --max-reps.
inline SchedulerOptions scheduler_options(const BenchArgs& args,
                                          std::uint64_t default_reps,
                                          bool require_stability = false) {
  SchedulerOptions opts;
  opts.threads = args.threads;
  opts.stop.max_reps = args.max_reps > 0 ? args.max_reps : default_reps;
  if (opts.stop.min_reps > opts.stop.max_reps) {
    opts.stop.min_reps = opts.stop.max_reps;
  }
  opts.stop.ci_halfwidth = args.ci_halfwidth;
  opts.stop.require_stability = require_stability;
  if (!args.no_cache) opts.cache_dir = args.cache_dir;
  opts.manifest_path = args.manifest_path;
  opts.rep_timeout = args.rep_timeout;
  opts.max_retries = args.max_retries;
  opts.report_path = args.report_path;
  return opts;
}

// Prints a warning when any cell finished degraded (retry budget exhausted
// under --rep-timeout); the table still prints — the statistics cover the
// shortened prefixes — but the run must not masquerade as clean.
inline void warn_if_degraded(const std::vector<CellStats>& stats) {
  std::uint64_t cells = 0;
  std::uint64_t failed = 0;
  for (const CellStats& s : stats) {
    if (s.degraded) {
      ++cells;
      failed += s.failed_reps;
    }
  }
  if (cells != 0) {
    std::fprintf(stderr,
                 "warning: %llu cell(s) degraded (%llu repetition(s) failed "
                 "permanently); statistics cover the shortened prefixes\n",
                 static_cast<unsigned long long>(cells),
                 static_cast<unsigned long long>(failed));
  }
}

}  // namespace noisypull::bench
