// Shared conventions of the experiment binaries.
//
// Every tab_* binary regenerates one experiment from DESIGN.md's
// per-experiment index: it prints a header naming the paper artifact, runs
// the sweep, prints an aligned table, and honors `--csv <path>` via
// BenchArgs.  Experiment sizes are chosen so the full suite runs in minutes
// on one core; the scaling *shapes* — not absolute constants — carry the
// paper's claims.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "noisypull/noisypull.hpp"

namespace noisypull::bench {

inline void header(const std::string& id, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

// Default calibrated schedule constant (see DESIGN.md, substitutions).
inline constexpr double kC1 = 2.0;

inline ProtocolFactory sf_factory(const PopulationConfig& pop, std::uint64_t h,
                                  double delta, double c1 = kC1) {
  return [pop, h, delta, c1](Rng&) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<SourceFilter>(pop, h, delta, c1);
  };
}

inline ProtocolFactory ssf_factory(const PopulationConfig& pop,
                                   std::uint64_t h, double delta,
                                   CorruptionPolicy policy, double c1 = kC1) {
  return [pop, h, delta, policy, c1](Rng& init) -> std::unique_ptr<PullProtocol> {
    auto ssf =
        std::make_unique<SelfStabilizingSourceFilter>(pop, h, delta, c1);
    corrupt_population(*ssf, policy, pop.correct_opinion(), init);
    return ssf;
  };
}

}  // namespace noisypull::bench
