// THM4-D — noise dependence of Theorem 4: the dominant term of Eq. 19 grows
// as δ/(1−2δ)², diverging as δ → 1/2.  We sweep δ for uniform noise and
// also run three *non-uniform* (δ-upper-bounded) channels through the
// Theorem 8 reduction to show the same protocol handles them.
//
// Both tables' cells share one experiment-scheduler queue
// (analysis/scheduler.hpp) with the usual `--threads` / `--ci-halfwidth` /
// `--cache-dir` flags.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-D / tab_thm4_scaling_delta",
         "Theorem 4: T grows like delta/(1-2delta)^2; delta-upper-bounded "
         "noise reduces to f(delta)-uniform noise (Theorem 8) and converges "
         "too.");

  const std::uint64_t n = 4096;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};

  const std::vector<double> deltas = {0.0,  0.05, 0.1,  0.15, 0.2,
                                      0.25, 0.3,  0.35, 0.4,  0.45};
  struct Channel {
    const char* name;
    Matrix m;
  };
  const Channel channels[] = {
      {"asymmetric mild", Matrix{0.95, 0.05, 0.15, 0.85}},
      {"asymmetric strong", Matrix{0.9, 0.1, 0.3, 0.7}},
      {"one-sided", Matrix{1.0, 0.0, 0.25, 0.75}},
  };

  // One queue for both tables: the uniform sweep first, then the reduced
  // non-uniform channels (their cells carry artificial noise, which the
  // scheduler folds into engines and cache keys alike).
  std::vector<ExperimentCell> cells;
  for (double delta : deltas) {
    cells.push_back(ExperimentCell{
        .label = "delta=" + std::to_string(delta),
        .make_protocol = sf_factory(pop, Holdings{n}, Delta{delta}),
        .noise = NoiseMatrix::uniform(2, delta),
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n},
        .seed = 3000 + static_cast<std::uint64_t>(delta * 100),
        .protocol_digest = sf_digest(pop, Holdings{n}, Delta{delta})});
  }
  struct Reduced {
    double tightest;
    double delta_prime;
  };
  std::vector<Reduced> reduced_info;
  for (const auto& ch : channels) {
    const NoiseMatrix raw(ch.m);
    const auto red = reduce_to_uniform(raw);
    reduced_info.push_back({raw.tightest_upper_bound(), red.delta_prime});
    cells.push_back(ExperimentCell{
        .label = std::string("channel ") + ch.name,
        .make_protocol = sf_factory(pop, Holdings{n}, Delta{red.delta_prime}),
        .noise = raw,
        .correct = pop.correct_opinion(),
        .cfg = RunConfig{.h = n},
        .seed = 4000,
        .protocol_digest = sf_digest(pop, Holdings{n}, Delta{red.delta_prime}),
        .use_aggregate_engine = true,
        .artificial_noise = red.artificial});
  }
  const auto stats = run_experiment(cells, scheduler_options(args, 8));

  Table table({"delta", "success", "rounds T", "first-correct",
               "T/(d/(1-2d)^2 + c)"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const double delta = deltas[i];
    const double t = stats[i].mean_rounds_run;
    const double shape =
        delta / ((1 - 2 * delta) * (1 - 2 * delta)) + 1.0;  // +1: log n floor
    table.cell(delta, 2)
        .cell(stats[i].success_rate, 2)
        .cell(t, 0)
        .cell(stats[i].mean_convergence_round, 1)
        .cell(t / shape, 1)
        .end_row();
  }
  args.emit(table, "_uniform");

  // Non-uniform channels handled via the Theorem 8 reduction: agents apply
  // the artificial noise P, and SF is tuned to the composed level f(δ).
  Table reduced({"channel", "tightest delta", "f(delta)", "success",
                 "rounds T"});
  for (std::size_t c = 0; c < std::size(channels); ++c) {
    const auto& st = stats[deltas.size() + c];
    reduced.cell(channels[c].name)
        .cell(reduced_info[c].tightest, 3)
        .cell(reduced_info[c].delta_prime, 3)
        .cell(st.success_rate, 2)
        .cell(st.mean_rounds_run, 0)
        .end_row();
  }
  args.emit(reduced, "_reduced");
  std::printf(
      "expected shape: T/(d/(1-2d)^2 + c) roughly flat across delta; the\n"
      "reduced non-uniform channels succeed like their uniform equivalents.\n");
  return 0;
}
