// THM4-D — noise dependence of Theorem 4: the dominant term of Eq. 19 grows
// as δ/(1−2δ)², diverging as δ → 1/2.  We sweep δ for uniform noise and
// also run three *non-uniform* (δ-upper-bounded) channels through the
// Theorem 8 reduction to show the same protocol handles them.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace noisypull;
  using namespace noisypull::bench;
  const auto args = BenchArgs::parse(argc, argv);

  header("THM4-D / tab_thm4_scaling_delta",
         "Theorem 4: T grows like delta/(1-2delta)^2; delta-upper-bounded "
         "noise reduces to f(delta)-uniform noise (Theorem 8) and converges "
         "too.");

  const std::uint64_t n = 4096;
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};

  Table table({"delta", "success", "rounds T", "first-correct",
               "T/(d/(1-2d)^2 + c)"});
  for (double delta : {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4,
                       0.45}) {
    const auto results = run_repetitions(
        sf_factory(pop, n, delta), NoiseMatrix::uniform(2, delta),
        pop.correct_opinion(), RunConfig{.h = n},
        RepeatOptions{.repetitions = 8,
                      .seed = 3000 + static_cast<std::uint64_t>(delta * 100)});
    const double t = static_cast<double>(results.front().rounds_run);
    const double shape =
        delta / ((1 - 2 * delta) * (1 - 2 * delta)) + 1.0;  // +1: log n floor
    table.cell(delta, 2)
        .cell(success_rate(results), 2)
        .cell(t, 0)
        .cell(mean_convergence_round(results), 1)
        .cell(t / shape, 1)
        .end_row();
  }
  args.emit(table, "_uniform");

  // Non-uniform channels handled via the Theorem 8 reduction: agents apply
  // the artificial noise P, and SF is tuned to the composed level f(δ).
  Table reduced({"channel", "tightest delta", "f(delta)", "success",
                 "rounds T"});
  struct Channel {
    const char* name;
    Matrix m;
  };
  const Channel channels[] = {
      {"asymmetric mild", Matrix{0.95, 0.05, 0.15, 0.85}},
      {"asymmetric strong", Matrix{0.9, 0.1, 0.3, 0.7}},
      {"one-sided", Matrix{1.0, 0.0, 0.25, 0.75}},
  };
  for (const auto& ch : channels) {
    const NoiseMatrix raw(ch.m);
    const auto red = reduce_to_uniform(raw);
    const auto results = run_repetitions(
        sf_factory(pop, n, red.delta_prime), raw, pop.correct_opinion(),
        RunConfig{.h = n},
        RepeatOptions{.repetitions = 8,
                      .seed = 4000,
                      .artificial_noise = red.artificial});
    const double t = static_cast<double>(results.front().rounds_run);
    reduced.cell(ch.name)
        .cell(raw.tightest_upper_bound(), 3)
        .cell(red.delta_prime, 3)
        .cell(success_rate(results), 2)
        .cell(t, 0)
        .end_row();
  }
  args.emit(reduced, "_reduced");
  std::printf(
      "expected shape: T/(d/(1-2d)^2 + c) roughly flat across delta; the\n"
      "reduced non-uniform channels succeed like their uniform equivalents.\n");
  return 0;
}
