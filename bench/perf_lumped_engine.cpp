// PERF — machine-readable benchmark of the lumped population engine
// (sim/lumped_engine, DESIGN.md §12).
//
// For each population size n this runs one full Source-Filter convergence
// run (the real Theorem 4 schedule at s1 = ⌈√n⌉) and reports rounds/sec,
// convergence, and the occupied-state support the per-round cost actually
// scales with.  The point of the table is the n-column: the agent-array
// engines stop at n ~ 10⁶–10⁷ (memory and per-agent work), while the lumped
// rows at n = 10⁹…10¹² complete at rounds/sec within a small factor of the
// n = 10⁶ row — per-round cost is O(#occupied states), not O(n).
//
// Output is JSON (schema v2, same conventions as perf_round_kernel) written
// to --out (default BENCH_lumped_engine.json).  `--smoke` swaps in a
// shrunken schedule and drops the largest sizes so the CI gate runs in
// seconds; smoke also runs deterministic self-checks (digest determinism,
// population conservation) and fails loudly if they regress.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>  // hardware_concurrency only; pooling lives in
                   // common/thread_pool (lint: file is allowlisted)
#include <vector>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;
using Clock = std::chrono::steady_clock;

// All timing runs share one named seed: throughput, not the stream
// identity, is what these measurements compare.
constexpr std::uint64_t kTimingSeed = 1;

struct Config {
  std::uint64_t n;
  std::uint64_t h;
  double delta;
};

struct ConfigResult {
  Config config;
  std::uint64_t s1;
  std::uint64_t total_rounds;
  std::uint64_t rounds_run;
  double seconds;
  double rounds_per_sec;
  bool all_correct;
  double correct_fraction;
  std::size_t max_support;
  std::uint64_t digest;
};

std::uint64_t isqrt_ceil(std::uint64_t n) {
  auto r = static_cast<std::uint64_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  while (r > 1 && (r - 1) * (r - 1) >= n) --r;
  while (r * r < n) ++r;
  return r;
}

SfSchedule schedule_for(const PopulationConfig& pop, const Config& cfg,
                        bool smoke) {
  if (!smoke) {
    return make_sf_schedule(pop, Holdings{cfg.h}, Delta{cfg.delta});
  }
  // Smoke: the real schedule shape at a fraction of the length — enough to
  // exercise listening, boosting, and the final sub-phase in seconds.
  const std::uint64_t m = 8 * cfg.h;
  return make_sf_schedule_with_m(pop, Holdings{cfg.h}, Delta{cfg.delta},
                                 MemoryBudget{m});
}

ConfigResult run_config(const Config& cfg, bool smoke) {
  const PopulationConfig pop{.n = cfg.n, .s1 = isqrt_ceil(cfg.n), .s0 = 0};
  SfSchedule sched = schedule_for(pop, cfg, smoke);
  if (smoke && sched.num_subphases > 20) sched.num_subphases = 20;
  auto setup = make_lumped_sf(pop, sched, NoiseMatrix::uniform(2, cfg.delta));
  LumpedEngine& engine = *setup.engine;

  const std::uint64_t rounds = sched.total_rounds();
  std::size_t max_support = engine.support_size();
  Rng rng(kTimingSeed);
  const auto start = Clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    engine.step(Holdings{cfg.h}, round, rng);
    max_support = std::max(max_support, engine.support_size());
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  const std::uint64_t correct = engine.count_correct(pop.correct_opinion());
  return ConfigResult{
      .config = cfg,
      .s1 = pop.s1,
      .total_rounds = rounds,
      .rounds_run = rounds,
      .seconds = elapsed,
      .rounds_per_sec =
          static_cast<double>(rounds) / (elapsed > 0.0 ? elapsed : 1e-9),
      .all_correct = correct == cfg.n,
      .correct_fraction =
          static_cast<double>(correct) / static_cast<double>(cfg.n),
      .max_support = max_support,
      .digest = engine.replay_digest()};
}

void emit_json(std::FILE* out, bool smoke,
               const std::vector<ConfigResult>& results) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"lumped_engine\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  // The engine is O(#occupied states) serial by construction — there are no
  // lanes to scale, so the field is pinned false with the reason.
  std::fprintf(out, "  \"lane_scaling_measured\": false,\n");
  std::fprintf(out,
               "  \"caveat\": \"lumped engine is serial by design: per-round "
               "cost is O(#occupied states), so thread lanes do not apply; "
               "compare rounds_per_sec across n instead\",\n");
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"engine\": \"lumped\",\n");
    std::fprintf(out, "      \"n\": %" PRIu64 ",\n", r.config.n);
    std::fprintf(out, "      \"h\": %" PRIu64 ",\n", r.config.h);
    std::fprintf(out, "      \"delta\": %.4f,\n", r.config.delta);
    std::fprintf(out, "      \"s1\": %" PRIu64 ",\n", r.s1);
    std::fprintf(out, "      \"rounds_timed\": %" PRIu64 ",\n", r.rounds_run);
    std::fprintf(out, "      \"seconds\": %.4f,\n", r.seconds);
    std::fprintf(out, "      \"rounds_per_sec\": %.4f,\n", r.rounds_per_sec);
    std::fprintf(out, "      \"all_correct_at_end\": %s,\n",
                 r.all_correct ? "true" : "false");
    std::fprintf(out, "      \"correct_fraction\": %.6f,\n",
                 r.correct_fraction);
    std::fprintf(out, "      \"max_support\": %zu,\n", r.max_support);
    std::fprintf(out, "      \"replay_digest\": \"%016" PRIx64 "\"\n",
                 r.digest);
    std::fprintf(out, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
}

// Deterministic self-checks for the CI smoke gate: digest determinism across
// identical runs, seed sensitivity, and exact population conservation.
bool check_lumped_invariants() {
  const PopulationConfig pop{.n = 1'000'000'000ULL, .s1 = 31'623, .s0 = 0};
  const auto sched =
      make_sf_schedule_with_m(pop, Holdings{16}, Delta{0.2}, MemoryBudget{64});
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);
  const auto run = [&](std::uint64_t seed) {
    auto setup = make_lumped_sf(pop, sched, noise);
    Rng rng(seed);
    for (std::uint64_t round = 0; round < sched.total_rounds(); ++round) {
      setup.engine->step(Holdings{16}, round, rng);
      const auto hist = setup.engine->display_histogram(round + 1);
      std::uint64_t sum = 0;
      for (const std::uint64_t c : hist) sum += c;
      if (sum != pop.n) {
        std::fprintf(stderr,
                     "lumped invariant violation: round %" PRIu64
                     " histogram sums to %" PRIu64 " != n\n",
                     round, sum);
        return std::uint64_t{0};
      }
    }
    return setup.engine->replay_digest();
  };
  const std::uint64_t a = run(kTimingSeed);
  const std::uint64_t b = run(kTimingSeed);
  const std::uint64_t c = run(kTimingSeed + 1);
  if (a == 0 || b == 0 || c == 0) return false;
  if (a != b) {
    std::fprintf(stderr, "lumped invariant violation: digest not deterministic\n");
    return false;
  }
  if (a == c) {
    std::fprintf(stderr, "lumped invariant violation: digest seed-insensitive\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_lumped_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_lumped_engine [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  if (smoke && !check_lumped_invariants()) {
    std::fprintf(stderr, "perf_lumped_engine: invariant check FAILED\n");
    return 1;
  }

  std::vector<Config> configs;
  if (smoke) {
    configs.push_back(Config{.n = 1'000'000, .h = 64, .delta = 0.2});
    configs.push_back(Config{.n = 1'000'000'000ULL, .h = 64, .delta = 0.2});
  } else {
    configs.push_back(Config{.n = 1'000'000, .h = 64, .delta = 0.2});
    configs.push_back(Config{.n = 1'000'000'000ULL, .h = 64, .delta = 0.2});
    configs.push_back(Config{.n = 100'000'000'000ULL, .h = 64, .delta = 0.2});
    configs.push_back(
        Config{.n = 1'000'000'000'000ULL, .h = 64, .delta = 0.2});
  }

  std::vector<ConfigResult> results;
  for (const auto& cfg : configs) {
    std::printf("perf_lumped_engine: n=%" PRIu64 " h=%" PRIu64 " ...\n",
                cfg.n, cfg.h);
    results.push_back(run_config(cfg, smoke));
    const auto& r = results.back();
    std::printf("  %" PRIu64 " rounds in %.2fs: %.2f rounds/s, "
                "correct_fraction=%.4f, max_support=%zu\n",
                r.rounds_run, r.seconds, r.rounds_per_sec, r.correct_fraction,
                r.max_support);
  }
  if (results.size() > 1) {
    const double base = results.front().rounds_per_sec;
    for (std::size_t i = 1; i < results.size(); ++i) {
      std::printf("  n=%" PRIu64 " throughput ratio vs n=%" PRIu64
                  ": %.2fx\n",
                  results[i].config.n, results.front().config.n,
                  results[i].rounds_per_sec / base);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_lumped_engine: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  emit_json(out, smoke, results);
  std::fclose(out);
  std::printf("perf_lumped_engine: wrote %s\n", out_path.c_str());
  return 0;
}
