// PERF-SWEEP — machine-readable benchmark of the experiment scheduler
// (analysis/scheduler.hpp) against the legacy per-cell repetition loop.
//
// One SF grid (n × δ) is executed four ways:
//   * legacy_per_cell    — the pre-scheduler pattern: one run_repetitions()
//                          call per cell, a full barrier between cells;
//   * scheduler_equal    — the global (cell × repetition) queue with early
//                          stopping disabled, i.e. exactly the same set of
//                          repetitions.  The bench asserts the statistics
//                          are bit-identical to the legacy loop (same
//                          finalize code path, same substreams) — this is
//                          the "equal statistics" comparison;
//   * scheduler_adaptive — the same queue with the Wilson-CI stop rule:
//                          strictly fewer repetitions wherever the interval
//                          tightens early, deterministically;
//   * cache cold/warm    — scheduler_adaptive through a fresh cache
//                          directory, then through the populated one: the
//                          warm pass replays outcomes instead of simulating
//                          and must reproduce identical statistics.
//
// Output is JSON (schema in EXPERIMENTS.md) written to --out (default
// BENCH_sweep_scheduler.json); `--smoke` shrinks the grid for the CI gate,
// `--threads` sets worker lanes.  hardware_threads and the honest
// lane_scaling_measured caveat are recorded as in perf_round_kernel: on a
// 1-core runner the queue cannot beat the barrier loop at equal statistics
// (both are compute-bound on one lane) — the adaptive and cache rows carry
// the wall-clock win there; multi-core runners additionally see the
// barrier-elimination win.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>  // hardware_concurrency only; pooling lives in
                   // common/thread_pool (lint: bench is allowlisted)
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace noisypull;
using namespace noisypull::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct GridPoint {
  std::uint64_t n;
  double delta;
};

bool same_stats(const CellStats& a, const CellStats& b) {
  return a.reps == b.reps && a.successes == b.successes &&
         a.stable_successes == b.stable_successes &&
         a.success_rate == b.success_rate &&
         a.mean_convergence_round == b.mean_convergence_round &&
         a.convergence_stddev == b.convergence_stddev &&
         a.mean_rounds_run == b.mean_rounds_run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweep_scheduler.json";
  unsigned threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: perf_sweep_scheduler [--smoke] [--out PATH] "
                   "[--threads N]\n");
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::printf(
        "perf_sweep_scheduler: WARNING: 1 hardware thread — the equal-"
        "statistics comparison measures queue overhead, not parallel "
        "speedup (lane_scaling_measured=false)\n");
  }

  std::vector<std::uint64_t> ns;
  std::vector<double> deltas;
  std::uint64_t reps = 0;
  if (smoke) {
    ns = {500, 1000};
    deltas = {0.2};
    reps = 8;
  } else {
    ns = {500, 1000, 2000, 4000};
    deltas = {0.1, 0.2, 0.3};
    reps = 48;
  }
  const StopRule fixed{.max_reps = reps, .min_reps = reps,
                       .ci_halfwidth = 0.0};
  const StopRule adaptive{.max_reps = reps,
                          .min_reps = smoke ? 4ULL : 8ULL,
                          .ci_halfwidth = smoke ? 0.15 : 0.10};

  std::vector<GridPoint> grid;
  std::vector<ExperimentCell> cells;
  for (std::uint64_t n : ns) {
    for (double delta : deltas) {
      grid.push_back({n, delta});
      const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
      cells.push_back(ExperimentCell{
          .label =
              "n=" + std::to_string(n) + " delta=" + std::to_string(delta),
          .make_protocol = sf_factory(pop, Holdings{n}, Delta{delta}),
          .noise = NoiseMatrix::uniform(2, delta),
          .correct = pop.correct_opinion(),
          .cfg = RunConfig{.h = n},
          .seed = 9000 + n + static_cast<std::uint64_t>(delta * 100),
          .protocol_digest = sf_digest(pop, Holdings{n}, Delta{delta})});
    }
  }
  std::printf("perf_sweep_scheduler: %zu cells x %llu reps, threads=%u\n",
              cells.size(), static_cast<unsigned long long>(reps),
              threads == 0 ? hw : threads);

  // --- legacy per-cell barrier loop (the seed pattern) -------------------
  auto start = Clock::now();
  std::vector<CellStats> legacy;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    const auto results = run_repetitions(
        cell.make_protocol, cell.noise, cell.correct, cell.cfg,
        RepeatOptions{.repetitions = reps, .seed = cell.seed,
                      .threads = threads});
    std::vector<RepOutcome> outcomes;
    outcomes.reserve(results.size());
    for (const auto& r : results) outcomes.push_back(to_outcome(r));
    legacy.push_back(finalize_prefix(outcomes, reps, fixed));
  }
  const double legacy_seconds = seconds_since(start);
  std::printf("  legacy_per_cell:    %.3fs\n", legacy_seconds);

  // --- scheduler, early stopping off: equal statistics -------------------
  SchedulerOptions equal_opts{.threads = threads, .stop = fixed};
  start = Clock::now();
  const auto equal = run_experiment(cells, equal_opts);
  const double equal_seconds = seconds_since(start);
  std::printf("  scheduler_equal:    %.3fs (%.2fx)\n", equal_seconds,
              legacy_seconds / equal_seconds);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!same_stats(legacy[i], equal[i])) {
      std::fprintf(stderr,
                   "perf_sweep_scheduler: FAILED — cell '%s' statistics "
                   "differ between the legacy loop and the scheduler\n",
                   cells[i].label.c_str());
      return 1;
    }
  }

  // --- scheduler, adaptive early stopping --------------------------------
  SchedulerOptions adaptive_opts{.threads = threads, .stop = adaptive};
  start = Clock::now();
  const auto stopped = run_experiment(cells, adaptive_opts);
  const double adaptive_seconds = seconds_since(start);
  std::uint64_t full_reps = 0, adaptive_reps = 0, stopped_cells = 0;
  for (const auto& st : stopped) {
    full_reps += reps;
    adaptive_reps += st.reps;
    if (st.early_stopped) ++stopped_cells;
  }
  std::printf(
      "  scheduler_adaptive: %.3fs (%.2fx), %llu/%llu reps, %llu cells "
      "stopped early\n",
      adaptive_seconds, legacy_seconds / adaptive_seconds,
      static_cast<unsigned long long>(adaptive_reps),
      static_cast<unsigned long long>(full_reps),
      static_cast<unsigned long long>(stopped_cells));

  // --- content-addressed cache: cold write, then warm replay -------------
  const std::filesystem::path cache_dir =
      std::filesystem::path(out_path).parent_path() / "sweep_scheduler_cache";
  std::filesystem::remove_all(cache_dir);
  SchedulerOptions cache_opts = adaptive_opts;
  cache_opts.cache_dir = cache_dir.string();
  start = Clock::now();
  const auto cold = run_experiment(cells, cache_opts);
  const double cold_seconds = seconds_since(start);
  start = Clock::now();
  const auto warm = run_experiment(cells, cache_opts);
  const double warm_seconds = seconds_since(start);
  std::printf("  cache cold/warm:    %.3fs / %.3fs\n", cold_seconds,
              warm_seconds);
  std::uint64_t warm_computed = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    warm_computed += warm[i].reps_computed;
    if (!same_stats(stopped[i], cold[i]) || !same_stats(stopped[i], warm[i])) {
      std::fprintf(stderr,
                   "perf_sweep_scheduler: FAILED — cell '%s' statistics "
                   "differ across cache settings\n",
                   cells[i].label.c_str());
      return 1;
    }
  }
  if (warm_computed != 0) {
    std::fprintf(stderr,
                 "perf_sweep_scheduler: FAILED — warm cache pass simulated "
                 "%llu repetitions (expected 0)\n",
                 static_cast<unsigned long long>(warm_computed));
    return 1;
  }
  std::filesystem::remove_all(cache_dir);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_sweep_scheduler: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"sweep_scheduler\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"lane_scaling_measured\": %s,\n",
               hw > 1 ? "true" : "false");
  if (hw <= 1) {
    std::fprintf(out,
                 "  \"caveat\": \"single hardware thread: scheduler_equal "
                 "measures queue overhead, not barrier elimination; the "
                 "adaptive and warm-cache speedups are the meaningful rows "
                 "on this machine\",\n");
  }
  std::fprintf(out, "  \"threads\": %u,\n", threads == 0 ? hw : threads);
  std::fprintf(out, "  \"cells\": %zu,\n", cells.size());
  std::fprintf(out, "  \"reps_per_cell\": %llu,\n",
               static_cast<unsigned long long>(reps));
  std::fprintf(out, "  \"ci_halfwidth\": %.4f,\n", adaptive.ci_halfwidth);
  std::fprintf(out, "  \"legacy_per_cell\": { \"seconds\": %.4f },\n",
               legacy_seconds);
  std::fprintf(out,
               "  \"scheduler_equal\": { \"seconds\": %.4f, "
               "\"speedup_vs_legacy\": %.4f, \"stats_identical\": true },\n",
               equal_seconds, legacy_seconds / equal_seconds);
  std::fprintf(out,
               "  \"scheduler_adaptive\": { \"seconds\": %.4f, "
               "\"speedup_vs_legacy\": %.4f, \"reps\": %llu, "
               "\"reps_full\": %llu, \"cells_stopped_early\": %llu },\n",
               adaptive_seconds, legacy_seconds / adaptive_seconds,
               static_cast<unsigned long long>(adaptive_reps),
               static_cast<unsigned long long>(full_reps),
               static_cast<unsigned long long>(stopped_cells));
  std::fprintf(out,
               "  \"cache\": { \"cold_seconds\": %.4f, \"warm_seconds\": "
               "%.4f, \"warm_speedup_vs_legacy\": %.4f, "
               "\"warm_reps_computed\": 0, \"stats_identical\": true }\n",
               cold_seconds, warm_seconds, legacy_seconds / warm_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("perf_sweep_scheduler: wrote %s\n", out_path.c_str());
  return 0;
}
